//! Multi-user workloads: concurrent client accesses on one cluster.
//!
//! §7.3 lists "evaluation for multi-user workloads" as future work: the
//! paper approximates other tenants with random background requests,
//! noting that a real multi-client model would let one study whole-system
//! throughput. This module is that model for reads: M clients, each with
//! its own NIC, metadata session, disk selection, layout, and decoder,
//! issuing speculative accesses against the *same* disks. Contention is
//! physical: interleaved streams force repositioning in the disk model
//! (§1.2 "interleaved access streams can incur additional seeks"), and
//! each disk's FIFO queue is shared by every client.
//!
//! Only read accesses are modelled (the workloads are read-dominated,
//! §3.2). Each client reads its own independently-striped segment.

use robustore_cluster::Cluster;
use robustore_diskmodel::request::{Direction, DiskRequest, RequestId, StreamId};
use robustore_erasure::lt::LtCode;
use robustore_simkit::{EventQueue, SeedSequence, SimDuration, SimTime};

use crate::config::{AccessConfig, SchemeKind};
use crate::outcome::AccessOutcome;
use crate::placement::Placement;
use crate::runner::select_disks;
use crate::tracker::ReadTracker;

/// Configuration for a concurrent-read experiment.
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// Per-client access parameters (scheme, sizes, redundancy, cluster).
    pub base: AccessConfig,
    /// Number of simultaneous clients.
    pub clients: usize,
    /// Stagger between client start times (0 = all at once).
    pub stagger: SimDuration,
}

/// Result of a concurrent-read experiment.
#[derive(Debug, Clone)]
pub struct MultiOutcome {
    /// Per-client access outcomes, in client order.
    pub per_client: Vec<AccessOutcome>,
    /// Time from first start to last completion.
    pub makespan: SimDuration,
    /// Aggregate useful bytes divided by the makespan, bytes/second.
    pub system_throughput: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    Pending,
    AtDisk,
    InFlight,
    Done,
    Cancelled,
}

struct Instance {
    client: usize,
    slot: usize,
    semantic: u32,
    state: InstState,
}

enum Ev {
    Start {
        client: usize,
    },
    RequestsArrive {
        client: usize,
        slot: usize,
        insts: Vec<u32>,
    },
    DiskDone {
        gdisk: usize,
    },
    BgArrive {
        gdisk: usize,
    },
    NicDone {
        client: usize,
        inst: u32,
    },
    Deliver {
        inst: u32,
    },
    CancelAll {
        client: usize,
        slot: usize,
    },
}

/// Per-client session state.
struct Session<'a> {
    /// Global disk id per slot.
    disks: Vec<usize>,
    placement: Placement,
    tracker: ReadTracker<'a>,
    started_at: SimTime,
    completed_at: Option<SimTime>,
    outstanding: usize,
    nic_pending: std::collections::VecDeque<u32>,
    nic_busy: bool,
    network_bytes: u64,
    blocks_at_completion: usize,
}

/// Run `cfg.clients` concurrent reads; deterministic in `seq`.
///
/// Clients use distinct `StreamId::Foreground(c)` streams, so the disk
/// model charges repositioning whenever service alternates between
/// clients — the §1.2 contention mechanism. RRAID-A's multi-round
/// adaptation is not supported here (its client state is heavier); the
/// speculative schemes are the interesting ones under contention.
pub fn run_concurrent_reads(cfg: &MultiConfig, seq: &SeedSequence) -> MultiOutcome {
    assert!(cfg.clients >= 1, "need at least one client");
    assert!(
        cfg.base.scheme != SchemeKind::RraidA,
        "RRAID-A is not supported by the multi-user coordinator"
    );
    cfg.base.validate().expect("invalid access config");
    let base = &cfg.base;
    let mut cluster = Cluster::build(
        base.cluster.clone(),
        base.layout,
        base.background,
        &seq.subsequence("cluster", 0),
    );

    // Plan every client's session up front (placement + LT plan).
    let codes: Vec<Option<LtCode>> = (0..cfg.clients)
        .map(|c| {
            let cseq = seq.subsequence("client", c as u64);
            match base.scheme {
                SchemeKind::RobuStore => Some(
                    LtCode::plan(base.k(), base.n(), base.lt, cseq.seed_for("lt-plan", 0))
                        .expect("valid LT parameters"),
                ),
                _ => None,
            }
        })
        .collect();
    let mut sessions: Vec<Session<'_>> = (0..cfg.clients)
        .map(|c| {
            let cseq = seq.subsequence("client", c as u64);
            let disks = select_disks(cluster.num_disks(), base.num_disks, &cseq);
            let placement = match base.scheme {
                SchemeKind::Raid0 => Placement::raid0(base.k(), base.num_disks),
                SchemeKind::RraidS | SchemeKind::RraidA => {
                    Placement::rraid(base.k(), base.n(), base.num_disks)
                }
                SchemeKind::RobuStore => {
                    Placement::coded_balanced(base.k(), base.n(), base.num_disks)
                }
            };
            let tracker = match &codes[c] {
                Some(code) => ReadTracker::lt(code),
                None => ReadTracker::coverage(base.k()),
            };
            Session {
                disks,
                placement,
                tracker,
                started_at: SimTime::ZERO,
                completed_at: None,
                outstanding: 0,
                nic_pending: std::collections::VecDeque::new(),
                nic_busy: false,
                network_bytes: 0,
                blocks_at_completion: 0,
            }
        })
        .collect();

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut instances: Vec<Instance> = Vec::new();
    let half_rtt = base.cluster.rtt / 2;
    let block_sectors = robustore_diskmodel::bytes_to_sectors(base.block_bytes);
    let block_transfer =
        SimDuration::from_secs_f64(base.block_bytes as f64 / base.cluster.client_bandwidth);
    let decode_tail = if base.scheme == SchemeKind::RobuStore {
        SimDuration::from_secs_f64(base.block_bytes as f64 / base.decode_bandwidth)
    } else {
        SimDuration::ZERO
    };
    let warmup = if cluster.has_background() {
        SimDuration::from_secs(2)
    } else {
        SimDuration::ZERO
    };

    // Seed background arrivals on every disk any client uses.
    let mut bg_counter = 0u64;
    {
        let used: std::collections::HashSet<usize> = sessions
            .iter()
            .flat_map(|s| s.disks.iter().copied())
            .collect();
        for gdisk in used {
            if let Some(bg) = cluster.background_mut(gdisk) {
                let t = bg.next_arrival(SimTime::ZERO);
                q.schedule(t, Ev::BgArrive { gdisk });
            }
        }
    }
    for (c, session) in sessions.iter_mut().enumerate() {
        let begin = SimTime::ZERO + warmup + cfg.stagger * c as u64;
        session.started_at = begin;
        q.schedule(
            begin + base.cluster.metadata_overhead,
            Ev::Start { client: c },
        );
    }

    let all_done = |sessions: &[Session<'_>]| {
        sessions
            .iter()
            .all(|s| s.completed_at.is_some() && s.outstanding == 0)
    };

    // NIC helpers operate on one session.
    fn try_start_nic(
        s: &mut Session<'_>,
        client: usize,
        now: SimTime,
        q: &mut EventQueue<Ev>,
        block_bytes: u64,
        block_transfer: SimDuration,
    ) {
        if s.nic_busy {
            return;
        }
        if let Some(inst) = s.nic_pending.pop_front() {
            s.nic_busy = true;
            s.network_bytes += block_bytes;
            q.schedule(now + block_transfer, Ev::NicDone { client, inst });
        }
    }

    while !all_done(&sessions) {
        let Some((now, ev)) = q.pop() else {
            // Every live event drained without completion: failures are not
            // injected here, so this is a bug, not a condition.
            panic!("multi-user simulation stalled");
        };
        match ev {
            Ev::Start { client } => {
                let mut batches: Vec<Vec<u32>> = vec![Vec::new(); sessions[client].disks.len()];
                for (slot, batch) in batches.iter_mut().enumerate() {
                    for b in &sessions[client].placement.per_disk[slot] {
                        let id = instances.len() as u32;
                        instances.push(Instance {
                            client,
                            slot,
                            semantic: b.semantic,
                            state: InstState::Pending,
                        });
                        batch.push(id);
                    }
                }
                sessions[client].outstanding += batches.iter().map(|b| b.len()).sum::<usize>();
                for (slot, insts) in batches.into_iter().enumerate() {
                    q.schedule(
                        now + half_rtt,
                        Ev::RequestsArrive {
                            client,
                            slot,
                            insts,
                        },
                    );
                }
            }
            Ev::RequestsArrive {
                client,
                slot,
                insts,
            } => {
                let gdisk = sessions[client].disks[slot];
                for inst in insts {
                    if sessions[client].completed_at.is_some() {
                        instances[inst as usize].state = InstState::Cancelled;
                        sessions[client].outstanding -= 1;
                        continue;
                    }
                    instances[inst as usize].state = InstState::AtDisk;
                    let req = DiskRequest {
                        id: RequestId(inst as u64),
                        stream: StreamId::Foreground(client as u64),
                        direction: Direction::Read,
                        sectors: block_sectors,
                        tag: inst as u64,
                    };
                    if let Some(t) = cluster.disk_mut(gdisk).submit(now, req) {
                        q.schedule(t, Ev::DiskDone { gdisk });
                    }
                }
            }
            Ev::BgArrive { gdisk } => {
                if all_done(&sessions) {
                    continue;
                }
                bg_counter += 1;
                let id = RequestId((1 << 40) + bg_counter);
                let backlog = cluster.disk(gdisk).queued_background();
                let Some(bg) = cluster.background_mut(gdisk) else {
                    continue;
                };
                let next = bg.next_arrival(now);
                if backlog < robustore_diskmodel::background::MAX_BACKLOG {
                    let req = bg.make_request(id);
                    if let Some(t) = cluster.disk_mut(gdisk).submit(now, req) {
                        q.schedule(t, Ev::DiskDone { gdisk });
                    }
                }
                q.schedule(next, Ev::BgArrive { gdisk });
            }
            Ev::DiskDone { gdisk } => {
                let (completion, next) = cluster.disk_mut(gdisk).on_complete(now);
                if let Some(t) = next {
                    q.schedule(t, Ev::DiskDone { gdisk });
                }
                if let StreamId::Foreground(c) = completion.request.stream {
                    let client = c as usize;
                    let inst = completion.request.tag as u32;
                    instances[inst as usize].state = InstState::InFlight;
                    // Per-client NIC: data propagates rtt/2, then
                    // serialises on the client's own link. We model the
                    // propagation inside the transmission slot.
                    sessions[client].nic_pending.push_back(inst);
                    let s = &mut sessions[client];
                    try_start_nic(
                        s,
                        client,
                        now + half_rtt,
                        &mut q,
                        base.block_bytes,
                        block_transfer,
                    );
                }
            }
            Ev::NicDone { client, inst } => {
                sessions[client].nic_busy = false;
                q.schedule(now + half_rtt, Ev::Deliver { inst });
                let s = &mut sessions[client];
                try_start_nic(s, client, now, &mut q, base.block_bytes, block_transfer);
            }
            Ev::Deliver { inst } => {
                let client = instances[inst as usize].client;
                let semantic = instances[inst as usize].semantic;
                instances[inst as usize].state = InstState::Done;
                sessions[client].outstanding -= 1;
                let s = &mut sessions[client];
                if s.completed_at.is_none() && s.tracker.receive(semantic) {
                    s.blocks_at_completion = s.tracker.received();
                    s.completed_at = Some(now + decode_tail);
                    for slot in 0..s.disks.len() {
                        q.schedule(now + half_rtt, Ev::CancelAll { client, slot });
                    }
                }
            }
            Ev::CancelAll { client, slot } => {
                let gdisk = sessions[client].disks[slot];
                let cancelled = cluster
                    .disk_mut(gdisk)
                    .cancel_stream(StreamId::Foreground(client as u64));
                for r in cancelled {
                    instances[r.tag as usize].state = InstState::Cancelled;
                    sessions[client].outstanding -= 1;
                }
                // Blocks waiting on this client's NIC from this server are
                // droppable too.
                let mut dropped = Vec::new();
                sessions[client].nic_pending.retain(|&i| {
                    if instances[i as usize].slot == slot {
                        dropped.push(i);
                        false
                    } else {
                        true
                    }
                });
                for i in dropped {
                    instances[i as usize].state = InstState::Cancelled;
                    sessions[client].outstanding -= 1;
                }
            }
        }
    }

    let per_client: Vec<AccessOutcome> = sessions
        .iter()
        .map(|s| {
            let completed = s.completed_at.expect("all sessions complete");
            AccessOutcome {
                data_bytes: base.data_bytes,
                latency: completed.since(s.started_at),
                network_bytes: s.network_bytes,
                blocks_at_completion: s.blocks_at_completion,
                cache_hit_blocks: 0,
                reception_overhead: if base.scheme == SchemeKind::RobuStore {
                    s.blocks_at_completion as f64 / base.k() as f64 - 1.0
                } else {
                    0.0
                },
                failed: false,
                request_log: Vec::new(),
            }
        })
        .collect();
    let first_start = sessions
        .iter()
        .map(|s| s.started_at)
        .min()
        .expect("at least one client");
    let last_end = sessions
        .iter()
        .map(|s| s.completed_at.expect("complete"))
        .max()
        .expect("at least one client");
    let makespan = last_end.since(first_start);
    MultiOutcome {
        system_throughput: (cfg.clients as u64 * base.data_bytes) as f64 / makespan.as_secs_f64(),
        per_client,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(scheme: SchemeKind) -> AccessConfig {
        let mut cfg = AccessConfig::default().with_scheme(scheme).with_disks(8);
        cfg.data_bytes = 64 << 20;
        cfg.cluster.num_disks = 16;
        cfg
    }

    fn multi(scheme: SchemeKind, clients: usize) -> MultiConfig {
        MultiConfig {
            base: base(scheme),
            clients,
            stagger: SimDuration::ZERO,
        }
    }

    #[test]
    fn single_client_matches_scale_of_run_access() {
        let m = run_concurrent_reads(&multi(SchemeKind::RobuStore, 1), &SeedSequence::new(4));
        assert_eq!(m.per_client.len(), 1);
        let solo = crate::runner::run_access(&base(SchemeKind::RobuStore), &SeedSequence::new(4));
        let a = m.per_client[0].latency.as_secs_f64();
        let b = solo.latency.as_secs_f64();
        // Different disk-selection streams, same distribution: same ballpark.
        assert!(a / b < 4.0 && b / a < 4.0, "multi {a:.2}s vs solo {b:.2}s");
    }

    #[test]
    fn contention_slows_individual_clients() {
        let one = run_concurrent_reads(&multi(SchemeKind::RobuStore, 1), &SeedSequence::new(6));
        let four = run_concurrent_reads(&multi(SchemeKind::RobuStore, 4), &SeedSequence::new(6));
        let mean = |m: &MultiOutcome| {
            m.per_client
                .iter()
                .map(|o| o.latency.as_secs_f64())
                .sum::<f64>()
                / m.per_client.len() as f64
        };
        assert!(
            mean(&four) > mean(&one),
            "sharing the disks must cost latency: {:.2} vs {:.2}",
            mean(&four),
            mean(&one)
        );
        // But aggregate throughput should exceed a single client's.
        assert!(four.system_throughput > one.system_throughput);
    }

    #[test]
    fn robustore_sustains_more_aggregate_throughput_than_raid0() {
        let robusto = run_concurrent_reads(&multi(SchemeKind::RobuStore, 3), &SeedSequence::new(7));
        let raid0 = run_concurrent_reads(&multi(SchemeKind::Raid0, 3), &SeedSequence::new(7));
        assert!(
            robusto.system_throughput > 2.0 * raid0.system_throughput,
            "RobuSTore {:.0} vs RAID-0 {:.0} MB/s system throughput",
            robusto.system_throughput / 1e6,
            raid0.system_throughput / 1e6
        );
    }

    #[test]
    fn staggered_starts_are_reflected_in_latency_accounting() {
        let mut cfg = multi(SchemeKind::RobuStore, 3);
        cfg.stagger = SimDuration::from_millis(200);
        let m = run_concurrent_reads(&cfg, &SeedSequence::new(9));
        assert_eq!(m.per_client.len(), 3);
        for o in &m.per_client {
            assert!(o.latency.as_secs_f64() > 0.0);
            assert!(!o.failed);
        }
        assert!(
            m.makespan.as_secs_f64() >= 0.4,
            "stagger extends the makespan"
        );
    }

    #[test]
    fn deterministic() {
        let a = run_concurrent_reads(&multi(SchemeKind::RraidS, 2), &SeedSequence::new(11));
        let b = run_concurrent_reads(&multi(SchemeKind::RraidS, 2), &SeedSequence::new(11));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.per_client[1].network_bytes, b.per_client[1].network_bytes);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn rraid_a_rejected() {
        run_concurrent_reads(&multi(SchemeKind::RraidA, 2), &SeedSequence::new(1));
    }
}
