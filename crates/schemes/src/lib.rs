#![warn(missing_docs)]

//! The parallel storage schemes under evaluation.
//!
//! Chapter 6 compares four schemes that differ in *data layout* (Figure
//! 6-1) and *access mechanism* (Figure 6-2):
//!
//! | Scheme      | Redundancy              | Access                          |
//! |-------------|-------------------------|---------------------------------|
//! | `Raid0`     | none (plain striping)   | parallel read-all               |
//! | `RraidS`    | rotated replicas        | speculative (read all, cancel)  |
//! | `RraidA`    | rotated replicas        | adaptive multi-round stealing   |
//! | `RobuStore` | LT erasure coding       | speculative + incremental decode|
//!
//! * [`placement`] — block-to-disk layouts, balanced and unbalanced.
//! * [`config`] — one access's configuration (scheme, sizes, redundancy,
//!   cluster policies) with the §6.2.5 baseline as the default.
//! * [`tracker`] — scheme-specific completion detection.
//! * [`engine`] — the discrete-event coordinator that runs one read or
//!   write access against a [`robustore_cluster::Cluster`].
//! * [`adaptive`] — RRAID-A's client-side work-stealing planner, plus the
//!   queue-aware wave policy used by the real client's speculative reads.
//! * [`outcome`] — per-access metrics (§6.2.3: access bandwidth, latency,
//!   I/O overhead) and multi-trial statistics.
//! * [`runner`] — builds clusters, runs trials, and orchestrates
//!   read-after-write experiments.
//!
//! # Example: one reduced-scale trial set
//!
//! ```
//! use robustore_schemes::{run_trials, AccessConfig, SchemeKind};
//!
//! // 32 MB over 4 of 8 disks — a miniature of the paper's baseline.
//! let mut cfg = AccessConfig::default()
//!     .with_scheme(SchemeKind::RobuStore)
//!     .with_disks(4);
//! cfg.data_bytes = 32 << 20;
//! cfg.cluster.num_disks = 8;
//!
//! let stats = run_trials(&cfg, 3, 7);
//! assert_eq!(stats.trials(), 3);
//! assert!(stats.mean_bandwidth_mbps() > 0.0);
//! ```

pub mod adaptive;
pub mod config;
pub mod engine;
pub mod multiuser;
pub mod outcome;
pub mod placement;
pub mod runner;
pub mod tracker;

pub use adaptive::{AdaptiveReadPolicy, DiskLoad, DiskLoadMap, WaveSchedule, WaveSlot};
pub use config::{AccessConfig, AccessKind, SchemeKind, Striping};
// The scheme engine itself is symbolic (it moves block *ids*, not bytes),
// so it never needs a pool; the re-export serves data-path callers built
// on top of the schemes (the real client, benchmarks) from one place.
pub use multiuser::{run_concurrent_reads, MultiConfig, MultiOutcome};
pub use outcome::{AccessOutcome, RequestOutcome, RequestRecord, TrialStats};
pub use placement::Placement;
pub use robustore_erasure::BlockPool;
pub use robustore_simkit::FaultScenario;
pub use runner::{run_access, run_read_cold_warm, run_sequence, run_trials, run_trials_threaded};
