//! The access coordinator: one read or write access as a discrete-event
//! simulation over a [`Cluster`].
//!
//! The engine mirrors the paper's simulator structure (§6.2.2, Figure
//! 6-3): the virtual client plans the access, requests blocks; each
//! request is delayed by the fixed network latency, checked against the
//! filer cache, and queued at the virtual disk; completions flow back
//! through the (serialised) client NIC. Speculative schemes cancel
//! outstanding requests one half-RTT after the client has enough blocks —
//! whatever is already in service or in flight completes and is charged to
//! I/O overhead, the paper's "one round-trip of waste".
//!
//! Timing model:
//!
//! * client → server: requests are small; they arrive RTT/2 after sending.
//! * server → client (reads): a block departs when the disk (or cache)
//!   produces it, propagates RTT/2, then serialises over the client NIC at
//!   `client_bandwidth` — the only shared-bandwidth resource modelled,
//!   since the paper presumes plentiful bandwidth elsewhere.
//! * client → server (writes): symmetric, serialising on the egress side.
//! * metadata/open: a flat 5 ms before any request leaves (§6.2.2).

use std::collections::HashMap;

use robustore_cluster::server::{line_address, lines_per_block};
use robustore_cluster::Cluster;
use robustore_diskmodel::request::{Direction, DiskRequest, RequestId, StreamId};
use robustore_simkit::{EventQueue, FaultKind, FaultPlan, SimDuration, SimTime};

use crate::adaptive::AdaptivePlanner;
use crate::config::{AccessConfig, SchemeKind};
use crate::outcome::{AccessOutcome, RequestOutcome, RequestRecord};
use crate::placement::Placement;
use crate::tracker::ReadTracker;

/// All foreground requests of the access share one stream id.
const FG_STREAM: StreamId = StreamId::Foreground(0);
/// Request-id space for background requests, above any instance id.
const BG_ID_BASE: u64 = 1 << 40;
/// Speculative-write pipeline depth per disk: enough to hide an RTT while
/// a block is being written (block service ≫ RTT in every configuration).
const WRITE_WINDOW: usize = 4;
/// Background-load warm-up before the access starts, so shared disks are
/// at their steady-state backlog when the client's requests arrive (the
/// paper's competitive-workload operating points, e.g. 93% utilisation at
/// a 6 ms interval, are steady-state figures).
const BG_WARMUP: SimDuration = SimDuration::from_secs(2);
/// How many times a request lost to a flaky disk's I/O error is
/// re-issued before the coordinator gives up on it.
const MAX_IO_RETRIES: u8 = 3;

/// Lifecycle of one block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    /// Created; request or data still on its way to the server.
    Pending,
    /// Queued or in service at the disk.
    AtDisk,
    /// Disk done; block data (read) or ack (write) heading to the client.
    InFlight,
    /// Delivered / acknowledged.
    Done,
    /// Cancelled before the disk serviced it.
    Cancelled,
}

#[derive(Debug, Clone, Copy)]
struct Instance {
    slot: usize,
    semantic: u32,
    copy: u8,
    state: InstState,
}

/// Simulation events.
enum Ev {
    /// Metadata/open finished; issue the initial requests.
    Start,
    /// A batch of read requests reaches a server.
    RequestsArrive { slot: usize, insts: Vec<u32> },
    /// A write block's data reaches its server.
    WriteArrive { inst: u32 },
    /// A background request arrives at a disk.
    BgArrive { slot: usize },
    /// The disk under `slot` finished its current service.
    DiskDone { slot: usize },
    /// A read block finished its transmission slot on the client NIC.
    NicDone { inst: u32 },
    /// A read block fully arrived at the client.
    Deliver { inst: u32 },
    /// A write acknowledgement arrived at the client.
    Ack { inst: u32 },
    /// A cancel-everything reaches a server.
    CancelAll { slot: usize },
    /// An RRAID-A cancel for one block reaches a server.
    CancelOne { slot: usize, inst: u32 },
    /// A scheduled fault from the access's [`FaultPlan`] takes effect.
    Fault { idx: usize },
}

/// Result of a simulated write, including what physically got committed.
pub struct WriteResult {
    /// The access metrics.
    pub outcome: AccessOutcome,
    /// Confirmed (acknowledged) block semantics per slot, in commit order —
    /// the layout a subsequent read sees.
    pub committed_per_slot: Vec<Vec<u32>>,
}

/// The coordinator for one access.
pub struct Engine<'a> {
    cfg: &'a AccessConfig,
    cluster: &'a mut Cluster,
    /// Global disk id per slot.
    disk_ids: &'a [usize],
    placement: &'a Placement,
    q: EventQueue<Ev>,
    instances: Vec<Instance>,
    /// Instances not yet Done/Cancelled.
    outstanding: usize,
    /// Read blocks ready at their servers, waiting for the client NIC.
    /// Until a block starts transmitting it still sits server-side and a
    /// cancellation can drop it.
    nic_pending: std::collections::VecDeque<u32>,
    /// Whether a block is currently transmitting toward the client.
    nic_busy: bool,
    /// Write-side client NIC serialisation point.
    egress_free: SimTime,
    network_bytes: u64,
    cache_hits: usize,
    completed_at: Option<SimTime>,
    blocks_at_completion: usize,
    reception_overhead: f64,
    bg_counter: u64,
    /// Set when injected failures make completion impossible.
    failed: bool,
    /// RRAID-A: (slot, semantic) → outstanding instance, for cancels.
    by_slot_sem: HashMap<(usize, u32), u32>,
    /// Scheduled mid-access faults (empty when the scenario is `None`).
    fault_plan: FaultPlan,
    /// Slots whose disk failed permanently mid-access.
    slot_failed: Vec<bool>,
    /// Per-instance count of I/O-error retries (flaky disks).
    retries: HashMap<u32, u8>,
    /// Per-request outcomes in finish order.
    request_log: Vec<RequestRecord>,
}

impl<'a> Engine<'a> {
    /// A fresh engine over `cluster` for the selected `disk_ids` and
    /// `placement` (one slot per selected disk). `faults` is the
    /// access's deterministic fault schedule; pass
    /// [`FaultPlan::empty`] for a fault-free run.
    pub fn new(
        cfg: &'a AccessConfig,
        cluster: &'a mut Cluster,
        disk_ids: &'a [usize],
        placement: &'a Placement,
        faults: FaultPlan,
    ) -> Self {
        assert_eq!(
            disk_ids.len(),
            placement.disks(),
            "placement and disk selection disagree"
        );
        assert!(
            faults.events.iter().all(|e| e.slot < disk_ids.len()),
            "fault plan targets a slot outside the selected disks"
        );
        // If a previous engine used this cluster, its event queue — and
        // any pending disk-completion events — are gone; start clean.
        cluster.quiesce();
        Engine {
            cfg,
            cluster,
            disk_ids,
            placement,
            q: EventQueue::new(),
            instances: Vec::new(),
            outstanding: 0,
            nic_pending: std::collections::VecDeque::new(),
            nic_busy: false,
            egress_free: SimTime::ZERO,
            network_bytes: 0,
            cache_hits: 0,
            completed_at: None,
            blocks_at_completion: 0,
            reception_overhead: 0.0,
            bg_counter: 0,
            failed: false,
            by_slot_sem: HashMap::new(),
            slot_failed: vec![false; disk_ids.len()],
            fault_plan: faults,
            retries: HashMap::new(),
            request_log: Vec::new(),
        }
    }

    /// Failure injection: the first `failed_disks` slots are down.
    fn slot_is_down(&self, slot: usize) -> bool {
        slot < self.cfg.failed_disks
    }

    /// A slot that cannot serve: statically down or failed mid-access.
    fn slot_dead(&self, slot: usize) -> bool {
        self.slot_is_down(slot) || self.slot_failed[slot]
    }

    /// Schedule every event of the fault plan relative to the access
    /// start (the instant the client begins, not the metadata phase).
    fn schedule_faults(&mut self, start: SimTime) {
        for idx in 0..self.fault_plan.events.len() {
            let at = start + self.fault_plan.events[idx].at;
            self.q.schedule(at, Ev::Fault { idx });
        }
    }

    /// Apply scheduled fault `idx`: flip the disk's health state, drop
    /// its queued work (permanent failure), or dump a burst of
    /// background requests on it.
    fn on_fault(&mut self, now: SimTime, idx: usize) {
        let fe = self.fault_plan.events[idx];
        let slot = fe.slot;
        if self.slot_dead(slot) {
            return; // already dead; nothing left to hurt
        }
        let gdisk = self.disk_ids[slot];
        match fe.kind {
            FaultKind::LoadBurst { requests, sectors } => {
                for _ in 0..requests {
                    self.bg_counter += 1;
                    let req = DiskRequest {
                        id: RequestId(BG_ID_BASE + self.bg_counter),
                        stream: StreamId::Background,
                        direction: Direction::Read,
                        sectors,
                        tag: 0,
                    };
                    if let Some(t) = self.cluster.disk_mut(gdisk).submit(now, req) {
                        self.q.schedule(t, Ev::DiskDone { slot });
                    }
                }
            }
            FaultKind::PermanentFailure => {
                self.slot_failed[slot] = true;
                let dropped =
                    self.cluster
                        .apply_fault(now, gdisk, slot, &fe.kind, &self.fault_plan);
                for r in dropped {
                    // Queued foreground work dies with the disk;
                    // background requests simply vanish.
                    if r.stream == FG_STREAM {
                        self.finish_instance(r.tag as u32, RequestOutcome::Failed);
                    }
                }
            }
            FaultKind::Slowdown { .. } | FaultKind::Flaky { .. } => {
                let dropped =
                    self.cluster
                        .apply_fault(now, gdisk, slot, &fe.kind, &self.fault_plan);
                debug_assert!(dropped.is_empty());
            }
        }
    }

    fn half_rtt(&self) -> SimDuration {
        self.cfg.cluster.rtt / 2
    }

    fn block_sectors(&self) -> u64 {
        robustore_diskmodel::bytes_to_sectors(self.cfg.block_bytes)
    }

    fn block_transfer(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cfg.block_bytes as f64 / self.cfg.cluster.client_bandwidth)
    }

    fn decode_tail(&self) -> SimDuration {
        if self.cfg.scheme == SchemeKind::RobuStore {
            SimDuration::from_secs_f64(self.cfg.block_bytes as f64 / self.cfg.decode_bandwidth)
        } else {
            SimDuration::ZERO
        }
    }

    fn done(&self) -> bool {
        self.failed || (self.completed_at.is_some() && self.outstanding == 0)
    }

    /// Every live request is gone but the access has not completed: the
    /// injected failures removed too many blocks.
    fn check_unreachable(&mut self) {
        if self.completed_at.is_none() && self.outstanding == 0 && !self.instances.is_empty() {
            self.failed = true;
        }
    }

    /// Seed background arrivals for every selected disk (from t = 0, so
    /// disks are already loaded when the client's requests land).
    fn seed_background(&mut self) {
        for slot in 0..self.disk_ids.len() {
            let gdisk = self.disk_ids[slot];
            if let Some(bg) = self.cluster.background_mut(gdisk) {
                let t = bg.next_arrival(SimTime::ZERO);
                self.q.schedule(t, Ev::BgArrive { slot });
            }
        }
    }

    /// When the access's clock starts: after the background warm-up if the
    /// cluster is shared, immediately otherwise.
    fn access_start(&self) -> SimTime {
        if self.cluster.has_background() {
            SimTime::ZERO + BG_WARMUP
        } else {
            SimTime::ZERO
        }
    }

    fn new_instance(&mut self, slot: usize, semantic: u32, copy: u8) -> u32 {
        let id = self.instances.len() as u32;
        self.instances.push(Instance {
            slot,
            semantic,
            copy,
            state: InstState::Pending,
        });
        self.outstanding += 1;
        id
    }

    /// Retire an instance with its final outcome, appending it to the
    /// per-request log. Served maps to `Done`; everything else is a
    /// form of cancellation for the internal lifecycle.
    fn finish_instance(&mut self, inst: u32, outcome: RequestOutcome) {
        let state = match outcome {
            RequestOutcome::Served => InstState::Done,
            _ => InstState::Cancelled,
        };
        let i = &mut self.instances[inst as usize];
        debug_assert!(!matches!(i.state, InstState::Done | InstState::Cancelled));
        i.state = state;
        self.outstanding -= 1;
        let key = (i.slot, i.semantic);
        self.request_log.push(RequestRecord {
            slot: i.slot,
            semantic: i.semantic,
            outcome,
        });
        self.by_slot_sem.remove(&key);
    }

    fn fg_request(&self, inst: u32, direction: Direction) -> DiskRequest {
        DiskRequest {
            id: RequestId(inst as u64),
            stream: FG_STREAM,
            direction,
            sectors: self.block_sectors(),
            tag: inst as u64,
        }
    }

    fn submit_to_disk(&mut self, now: SimTime, inst: u32, direction: Direction) {
        let slot = self.instances[inst as usize].slot;
        let req = self.fg_request(inst, direction);
        self.instances[inst as usize].state = InstState::AtDisk;
        let disk = self.cluster.disk_mut(self.disk_ids[slot]);
        if let Some(t) = disk.submit(now, req) {
            self.q.schedule(t, Ev::DiskDone { slot });
        }
    }

    /// Queue a block the server produced for transmission to the client.
    /// The client link serialises transmissions; blocks that have not
    /// begun transmitting remain at the server and are droppable by a
    /// cancellation. Network bytes are counted at transmission start.
    fn deliver_from_server(&mut self, now: SimTime, inst: u32) {
        self.instances[inst as usize].state = InstState::InFlight;
        self.nic_pending.push_back(inst);
        self.try_start_nic(now);
    }

    fn try_start_nic(&mut self, now: SimTime) {
        if self.nic_busy {
            return;
        }
        let Some(inst) = self.nic_pending.pop_front() else {
            return;
        };
        self.nic_busy = true;
        self.network_bytes += self.cfg.block_bytes;
        self.q
            .schedule(now + self.block_transfer(), Ev::NicDone { inst });
    }

    fn on_nic_done(&mut self, now: SimTime, inst: u32) {
        self.nic_busy = false;
        // Propagation to the client overlaps the next transmission.
        self.q.schedule(now + self.half_rtt(), Ev::Deliver { inst });
        self.try_start_nic(now);
    }

    /// Ship a write block from client to server through the egress NIC.
    fn send_write(&mut self, now: SimTime, inst: u32) {
        self.network_bytes += self.cfg.block_bytes;
        let begin = now.max(self.egress_free);
        let sent = begin + self.block_transfer();
        self.egress_free = sent;
        self.q
            .schedule(sent + self.half_rtt(), Ev::WriteArrive { inst });
    }

    /// Cache address of a stored block on its disk.
    fn cache_addr(&self, gdisk: usize, semantic: u32, copy: u8) -> (u64, u64) {
        let tag = ((semantic as u64) << 8) | copy as u64;
        let lines = lines_per_block(self.cfg.block_bytes, self.cfg.cluster.cache_line_bytes);
        (line_address(gdisk, tag, 0), lines)
    }

    fn on_bg_arrive(&mut self, now: SimTime, slot: usize) {
        if self.completed_at.is_some() {
            return; // stop generating load once the access is over
        }
        if self.slot_failed[slot] {
            return; // a dead disk takes no more background work
        }
        let gdisk = self.disk_ids[slot];
        self.bg_counter += 1;
        let id = RequestId(BG_ID_BASE + self.bg_counter);
        let backlog = self.cluster.disk(gdisk).queued_background();
        let Some(bg) = self.cluster.background_mut(gdisk) else {
            return;
        };
        let next = bg.next_arrival(now);
        // Competing applications throttle once their own queue backs up.
        if backlog < robustore_diskmodel::background::MAX_BACKLOG {
            let req = bg.make_request(id);
            if let Some(t) = self.cluster.disk_mut(gdisk).submit(now, req) {
                self.q.schedule(t, Ev::DiskDone { slot });
            }
        }
        self.q.schedule(next, Ev::BgArrive { slot });
    }

    /// Issue the post-completion cancellation to every server.
    fn broadcast_cancel(&mut self, now: SimTime) {
        for slot in 0..self.disk_ids.len() {
            self.q
                .schedule(now + self.half_rtt(), Ev::CancelAll { slot });
        }
    }

    fn on_cancel_all(&mut self, slot: usize) {
        let disk = self.cluster.disk_mut(self.disk_ids[slot]);
        let cancelled = disk.cancel_stream(FG_STREAM);
        for r in cancelled {
            self.finish_instance(r.tag as u32, RequestOutcome::CancelledBySpeculation);
        }
        // Blocks this server produced that have not begun transmitting are
        // still server-side: the cancel drops them untransmitted.
        let mut dropped = Vec::new();
        self.nic_pending.retain(|&inst| {
            if self.instances[inst as usize].slot == slot {
                dropped.push(inst);
                false
            } else {
                true
            }
        });
        for inst in dropped {
            self.finish_instance(inst, RequestOutcome::CancelledBySpeculation);
        }
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// Run a read access to completion, returning the metrics.
    ///
    /// `tracker` implements the scheme's completion rule; `adaptive` is
    /// `Some` for RRAID-A.
    pub fn run_read(
        mut self,
        mut tracker: ReadTracker<'_>,
        mut adaptive: Option<AdaptivePlanner>,
    ) -> AccessOutcome {
        self.seed_background();
        let start = self.access_start();
        self.schedule_faults(start);
        self.q
            .schedule(start + self.cfg.cluster.metadata_overhead, Ev::Start);

        while !self.done() {
            let Some((now, ev)) = self.q.pop() else {
                panic!(
                    "read simulation stalled: outstanding={}, complete={}",
                    self.outstanding,
                    tracker.is_complete()
                );
            };
            match ev {
                Ev::Start => self.read_start(now, adaptive.as_mut()),
                Ev::RequestsArrive { slot, insts } => self.read_requests_arrive(now, slot, insts),
                Ev::BgArrive { slot } => self.on_bg_arrive(now, slot),
                Ev::DiskDone { slot } => self.read_disk_done(now, slot),
                Ev::NicDone { inst } => self.on_nic_done(now, inst),
                Ev::Deliver { inst } => {
                    self.read_deliver(now, inst, &mut tracker, adaptive.as_mut())
                }
                Ev::CancelAll { slot } => self.on_cancel_all(slot),
                Ev::CancelOne { slot, inst } => {
                    let disk = self.cluster.disk_mut(self.disk_ids[slot]);
                    if disk.cancel_request(RequestId(inst as u64)) {
                        // The adaptive client gave up on this disk and
                        // re-issued the block elsewhere.
                        self.finish_instance(inst, RequestOutcome::TimedOut);
                    }
                }
                Ev::Fault { idx } => self.on_fault(now, idx),
                Ev::WriteArrive { .. } | Ev::Ack { .. } => {
                    unreachable!("write events in a read access")
                }
            }
            // With the event fully applied, a drained-but-incomplete
            // access can only mean injected failures ate too many blocks.
            self.check_unreachable();
        }

        if self.failed {
            return AccessOutcome {
                data_bytes: self.cfg.data_bytes,
                latency: self.q.now().max(start).since(start),
                network_bytes: self.network_bytes,
                blocks_at_completion: self.blocks_at_completion,
                cache_hit_blocks: self.cache_hits,
                reception_overhead: 0.0,
                failed: true,
                request_log: std::mem::take(&mut self.request_log),
            };
        }
        let completed_at = self.completed_at.expect("loop exits only when done");
        AccessOutcome {
            data_bytes: self.cfg.data_bytes,
            latency: completed_at.since(start),
            network_bytes: self.network_bytes,
            blocks_at_completion: self.blocks_at_completion,
            cache_hit_blocks: self.cache_hits,
            reception_overhead: self.reception_overhead,
            failed: false,
            request_log: std::mem::take(&mut self.request_log),
        }
    }

    fn read_start(&mut self, now: SimTime, adaptive: Option<&mut AdaptivePlanner>) {
        let initial_only_first_copy = adaptive.is_some();
        let placement = self.placement;
        let mut batches: Vec<Vec<u32>> = vec![Vec::new(); self.disk_ids.len()];
        for (slot, batch) in batches.iter_mut().enumerate() {
            for b in &placement.per_disk[slot] {
                if initial_only_first_copy && b.copy != 0 {
                    continue; // RRAID-A round one: replica 0 only
                }
                let inst = self.new_instance(slot, b.semantic, b.copy);
                self.by_slot_sem.insert((slot, b.semantic), inst);
                batch.push(inst);
            }
        }
        if let Some(pl) = adaptive {
            for (slot, batch) in batches.iter().enumerate() {
                for &inst in batch {
                    pl.on_request(slot, self.instances[inst as usize].semantic);
                }
            }
        }
        let at = now + self.half_rtt();
        for (slot, insts) in batches.into_iter().enumerate() {
            if !insts.is_empty() {
                self.q.schedule(at, Ev::RequestsArrive { slot, insts });
            }
        }
    }

    fn read_requests_arrive(&mut self, now: SimTime, slot: usize, insts: Vec<u32>) {
        if self.slot_dead(slot) {
            // The server is dead: requests vanish (the client's timeout is
            // subsumed by speculative access — it never waits on one disk).
            for inst in insts {
                self.finish_instance(inst, RequestOutcome::Failed);
            }
            return;
        }
        if self.completed_at.is_some() && self.cfg.read_cancellation {
            // The cancel already reached (or logically precedes) the
            // server; these requests are dropped on arrival.
            for inst in insts {
                self.finish_instance(inst, RequestOutcome::CancelledBySpeculation);
            }
            return;
        }
        let gdisk = self.disk_ids[slot];
        for inst in insts {
            let Instance { semantic, copy, .. } = self.instances[inst as usize];
            let (addr, lines) = self.cache_addr(gdisk, semantic, copy);
            let server = self.cluster.server_of_disk_mut(gdisk);
            if server.has_cache() && server.cache_read_block(addr, lines) {
                self.cache_hits += 1;
                self.deliver_from_server(now, inst);
            } else {
                self.submit_to_disk(now, inst, Direction::Read);
            }
        }
    }

    fn read_disk_done(&mut self, now: SimTime, slot: usize) {
        let gdisk = self.disk_ids[slot];
        let (completion, next) = self.cluster.disk_mut(gdisk).on_complete(now);
        if let Some(t) = next {
            self.q.schedule(t, Ev::DiskDone { slot });
        }
        if completion.request.stream != FG_STREAM {
            return;
        }
        let inst = completion.request.tag as u32;
        if completion.io_error {
            self.handle_io_error(now, slot, inst, Direction::Read);
            return;
        }
        // The disk read fills the filer cache (reads populate; §6.2.5).
        let Instance { semantic, copy, .. } = self.instances[inst as usize];
        let (addr, lines) = self.cache_addr(gdisk, semantic, copy);
        let server = self.cluster.server_of_disk_mut(gdisk);
        if server.has_cache() {
            server.cache_read_block(addr, lines);
        }
        self.deliver_from_server(now, inst);
    }

    /// A foreground completion carried an I/O error: re-issue the
    /// request a bounded number of times; past the cap — or once the
    /// access is already complete or the disk is dead — account the
    /// block as failed.
    fn handle_io_error(&mut self, now: SimTime, slot: usize, inst: u32, direction: Direction) {
        let give_up = self.completed_at.is_some() || self.slot_dead(slot);
        let attempts = self.retries.entry(inst).or_insert(0);
        if !give_up && *attempts < MAX_IO_RETRIES {
            *attempts += 1;
            self.submit_to_disk(now, inst, direction);
        } else {
            self.finish_instance(inst, RequestOutcome::Failed);
        }
    }

    fn read_deliver(
        &mut self,
        now: SimTime,
        inst: u32,
        tracker: &mut ReadTracker<'_>,
        adaptive: Option<&mut AdaptivePlanner>,
    ) {
        let semantic = self.instances[inst as usize].semantic;
        self.finish_instance(inst, RequestOutcome::Served);
        if self.completed_at.is_some() {
            return; // late block of a cancelled request: waste only
        }
        if tracker.receive(semantic) {
            self.blocks_at_completion = tracker.received();
            self.reception_overhead = if self.cfg.scheme == SchemeKind::RobuStore {
                tracker.received() as f64 / self.placement.k as f64 - 1.0
            } else {
                0.0
            };
            self.completed_at = Some(now + self.decode_tail());
            if self.cfg.read_cancellation {
                self.broadcast_cancel(now);
            }
            return;
        }
        // RRAID-A work stealing.
        if let Some(pl) = adaptive {
            let idle = pl.on_receive(semantic);
            for thief in idle {
                let Some(steal) = pl.plan_steal(thief, self.placement) else {
                    continue;
                };
                let at = now + self.half_rtt();
                let mut new_insts = Vec::with_capacity(steal.semantics.len());
                for &sem in &steal.semantics {
                    // Cancel the victim's copy if it is still cancellable.
                    if let Some(&victim_inst) = self.by_slot_sem.get(&(steal.victim, sem)) {
                        self.q.schedule(
                            at,
                            Ev::CancelOne {
                                slot: steal.victim,
                                inst: victim_inst,
                            },
                        );
                    }
                    let copy = self
                        .placement
                        .find_on_disk(steal.thief, sem)
                        .map(|pos| self.placement.per_disk[steal.thief][pos].copy)
                        .expect("planner only steals blocks the thief stores");
                    let ninst = self.new_instance(steal.thief, sem, copy);
                    self.by_slot_sem.insert((steal.thief, sem), ninst);
                    new_insts.push(ninst);
                }
                self.q.schedule(
                    at,
                    Ev::RequestsArrive {
                        slot: steal.thief,
                        insts: new_insts,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Write access
    // ------------------------------------------------------------------

    /// Run a write access to completion.
    ///
    /// For RAID-0/RRAID the instance set is exactly the placement and the
    /// write completes when everything is acknowledged. For RobuSTore the
    /// write is speculative: a per-disk pipeline of coded blocks is kept
    /// full (rateless encoding can always produce another block) until
    /// `target_blocks` are confirmed, then the rest is cancelled.
    pub fn run_write(mut self, target_blocks: usize) -> WriteResult {
        self.seed_background();
        let start = self.access_start();
        self.schedule_faults(start);
        self.q
            .schedule(start + self.cfg.cluster.metadata_overhead, Ev::Start);

        let speculative = self.cfg.scheme == SchemeKind::RobuStore;
        let slots = self.disk_ids.len();
        let mut confirmed = 0usize;
        let mut committed_per_slot: Vec<Vec<u32>> = vec![Vec::new(); slots];
        let mut next_coded: u32 = 0;
        let mut fixed_total = 0usize;

        // Client-side encode model (RobuSTore only): coded block `j`
        // leaves the encoder at start + (j+1)·block/bandwidth when
        // streaming, or only once the whole target set is encoded in
        // barrier mode. A send is held (`now.max(ready)`) until its block
        // exists; with no encode bandwidth configured, every block is
        // ready at `start` and the model is inert.
        let encode_ns: Option<u64> = if speculative {
            self.cfg
                .encode_bandwidth
                .map(|bw| (self.cfg.block_bytes as f64 / bw * 1e9).round() as u64)
        } else {
            None
        };
        let encode_barrier = self.cfg.encode_barrier;
        let encode_ready = |j: u32| -> SimTime {
            match encode_ns {
                Some(ns) => {
                    let encoded = if encode_barrier {
                        target_blocks as u64
                    } else {
                        j as u64 + 1
                    };
                    start + SimDuration::from_nanos(ns.saturating_mul(encoded))
                }
                None => start,
            }
        };

        while !self.done() {
            let Some((now, ev)) = self.q.pop() else {
                panic!(
                    "write simulation stalled: outstanding={}, confirmed={confirmed}",
                    self.outstanding
                );
            };
            match ev {
                Ev::Start => {
                    if speculative {
                        // Prime a WRITE_WINDOW-deep pipeline on every disk.
                        for _ in 0..WRITE_WINDOW {
                            for slot in 0..slots {
                                let coded = next_coded;
                                let inst = self.new_instance(slot, coded, 0);
                                next_coded += 1;
                                let at = now.max(encode_ready(coded));
                                self.send_write(at, inst);
                            }
                        }
                    } else {
                        // Fixed layout: send everything, round-robin across
                        // slots so all disks start working immediately.
                        let max_len = self
                            .placement
                            .per_disk
                            .iter()
                            .map(|d| d.len())
                            .max()
                            .unwrap_or(0);
                        for pos in 0..max_len {
                            for slot in 0..slots {
                                if let Some(b) = self.placement.per_disk[slot].get(pos) {
                                    let inst = self.new_instance(slot, b.semantic, b.copy);
                                    self.send_write(now, inst);
                                    fixed_total += 1;
                                }
                            }
                        }
                    }
                }
                Ev::WriteArrive { inst } => {
                    let slot = self.instances[inst as usize].slot;
                    if self.slot_dead(slot) {
                        self.finish_instance(inst, RequestOutcome::Failed);
                    } else if self.completed_at.is_some() {
                        self.finish_instance(inst, RequestOutcome::CancelledBySpeculation);
                    } else {
                        self.submit_to_disk(now, inst, Direction::Write);
                    }
                }
                Ev::BgArrive { slot } => self.on_bg_arrive(now, slot),
                Ev::DiskDone { slot } => {
                    let gdisk = self.disk_ids[slot];
                    let (completion, next) = self.cluster.disk_mut(gdisk).on_complete(now);
                    if let Some(t) = next {
                        self.q.schedule(t, Ev::DiskDone { slot });
                    }
                    if completion.request.stream == FG_STREAM {
                        let inst = completion.request.tag as u32;
                        if completion.io_error {
                            self.handle_io_error(now, slot, inst, Direction::Write);
                        } else {
                            self.instances[inst as usize].state = InstState::InFlight;
                            self.q.schedule(now + self.half_rtt(), Ev::Ack { inst });
                        }
                    }
                }
                Ev::Ack { inst } => {
                    let slot = self.instances[inst as usize].slot;
                    let semantic = self.instances[inst as usize].semantic;
                    self.finish_instance(inst, RequestOutcome::Served);
                    if self.completed_at.is_some() {
                        continue; // block still landed, but after completion
                    }
                    confirmed += 1;
                    committed_per_slot[slot].push(semantic);
                    self.blocks_at_completion = confirmed;
                    let target = if speculative {
                        target_blocks
                    } else {
                        fixed_total
                    };
                    if confirmed >= target {
                        self.completed_at = Some(now);
                        self.broadcast_cancel(now);
                    } else if speculative {
                        // Refill this disk's pipeline with a fresh block.
                        let coded = next_coded;
                        let ninst = self.new_instance(slot, coded, 0);
                        next_coded += 1;
                        let at = now.max(encode_ready(coded));
                        self.send_write(at, ninst);
                    }
                }
                Ev::CancelAll { slot } => self.on_cancel_all(slot),
                Ev::Fault { idx } => self.on_fault(now, idx),
                Ev::RequestsArrive { .. }
                | Ev::Deliver { .. }
                | Ev::NicDone { .. }
                | Ev::CancelOne { .. } => {
                    unreachable!("read events in a write access")
                }
            }
            self.check_unreachable();
        }

        if self.failed {
            return WriteResult {
                outcome: AccessOutcome {
                    data_bytes: self.cfg.data_bytes,
                    latency: self.q.now().max(start).since(start),
                    network_bytes: self.network_bytes,
                    blocks_at_completion: confirmed,
                    cache_hit_blocks: 0,
                    reception_overhead: 0.0,
                    failed: true,
                    request_log: std::mem::take(&mut self.request_log),
                },
                committed_per_slot,
            };
        }
        let completed_at = self.completed_at.expect("loop exits only when done");
        WriteResult {
            outcome: AccessOutcome {
                data_bytes: self.cfg.data_bytes,
                latency: completed_at.since(start),
                network_bytes: self.network_bytes,
                blocks_at_completion: self.blocks_at_completion,
                cache_hit_blocks: 0,
                reception_overhead: 0.0,
                failed: false,
                request_log: std::mem::take(&mut self.request_log),
            },
            committed_per_slot,
        }
    }
}
