//! Block-to-disk layouts (Figure 6-1).
//!
//! A placement maps every *stored block* — a plain block, a replica copy,
//! or an LT-coded block — to a position on one of the H selected disks.
//! The per-disk order is the on-disk order: disks service a speculative
//! access's blocks in exactly this order, which is what makes RRAID-S
//! sensitive to *intra-disk block ordering* (§6.3.1).

/// One stored block: the semantic id (original-block id for plain/replica
/// layouts, coded-block id for RobuSTore) plus the copy number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredBlock {
    /// Original or coded block id.
    pub semantic: u32,
    /// Replica number (always 0 for striped and coded layouts).
    pub copy: u8,
}

/// A data layout across H disk slots.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Stored blocks per disk slot, in on-disk order.
    pub per_disk: Vec<Vec<StoredBlock>>,
    /// Number of original blocks K.
    pub k: usize,
}

impl Placement {
    /// RAID-0: block i on disk i mod H (Figure 6-1c).
    pub fn raid0(k: usize, disks: usize) -> Self {
        assert!(disks > 0 && k > 0);
        let mut per_disk = vec![Vec::new(); disks];
        for i in 0..k {
            per_disk[i % disks].push(StoredBlock {
                semantic: i as u32,
                copy: 0,
            });
        }
        Placement { per_disk, k }
    }

    /// RRAID (S and A): copy r of block i on disk (i + r) mod H, per-disk
    /// order replica-major (Figure 6-1d). `n_stored` allows arbitrary
    /// redundancy: full replicas plus a partial replica covering the first
    /// `n_stored − full·K` originals.
    pub fn rraid(k: usize, n_stored: usize, disks: usize) -> Self {
        assert!(disks > 0 && k > 0);
        assert!(n_stored >= k, "need at least one copy of each original");
        let mut per_disk = vec![Vec::new(); disks];
        let full = n_stored / k;
        let partial = n_stored % k;
        for r in 0..full {
            for i in 0..k {
                per_disk[(i + r) % disks].push(StoredBlock {
                    semantic: i as u32,
                    copy: r as u8,
                });
            }
        }
        for i in 0..partial {
            per_disk[(i + full) % disks].push(StoredBlock {
                semantic: i as u32,
                copy: full as u8,
            });
        }
        Placement { per_disk, k }
    }

    /// RobuSTore balanced striping: coded block j on disk j mod H
    /// (Figure 6-1e).
    pub fn coded_balanced(k: usize, n_coded: usize, disks: usize) -> Self {
        assert!(disks > 0 && n_coded > 0);
        let mut per_disk = vec![Vec::new(); disks];
        for j in 0..n_coded {
            per_disk[j % disks].push(StoredBlock {
                semantic: j as u32,
                copy: 0,
            });
        }
        Placement { per_disk, k }
    }

    /// RobuSTore unbalanced striping: per-disk block counts proportional
    /// to `weights` (per-disk write bandwidth from a speculative write),
    /// allocated by largest remainder so counts sum exactly to `n_coded`.
    pub fn coded_weighted(k: usize, n_coded: usize, weights: &[f64]) -> Self {
        assert!(!weights.is_empty() && n_coded > 0);
        assert!(weights.iter().all(|&w| w >= 0.0));
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one positive weight");
        let disks = weights.len();
        // Largest-remainder apportionment.
        let quotas: Vec<f64> = weights.iter().map(|w| w / total * n_coded as f64).collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..disks).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
        });
        for &d in order.iter().take(n_coded - assigned) {
            counts[d] += 1;
        }
        let mut per_disk = vec![Vec::new(); disks];
        let mut next = 0u32;
        // Fill disk by disk; which coded index lands where is irrelevant
        // because coded blocks are symmetric.
        for (d, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                per_disk[d].push(StoredBlock {
                    semantic: next,
                    copy: 0,
                });
                next += 1;
            }
        }
        Placement { per_disk, k }
    }

    /// Build directly from explicit per-disk semantic lists (used to read
    /// back exactly what a simulated write stored).
    pub fn from_lists(k: usize, lists: Vec<Vec<u32>>) -> Self {
        let per_disk = lists
            .into_iter()
            .map(|l| {
                l.into_iter()
                    .map(|semantic| StoredBlock { semantic, copy: 0 })
                    .collect()
            })
            .collect();
        Placement { per_disk, k }
    }

    /// Number of disk slots.
    pub fn disks(&self) -> usize {
        self.per_disk.len()
    }

    /// Total stored blocks.
    pub fn total_blocks(&self) -> usize {
        self.per_disk.iter().map(|d| d.len()).sum()
    }

    /// Position of a copy of `semantic` on disk `slot`, if stored there.
    pub fn find_on_disk(&self, slot: usize, semantic: u32) -> Option<usize> {
        self.per_disk[slot]
            .iter()
            .position(|b| b.semantic == semantic)
    }

    /// How many copies of each semantic exist (diagnostics / tests).
    pub fn copy_counts(&self) -> std::collections::HashMap<u32, usize> {
        let mut m = std::collections::HashMap::new();
        for d in &self.per_disk {
            for b in d {
                *m.entry(b.semantic).or_insert(0) += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid0_round_robin() {
        let p = Placement::raid0(8, 4);
        assert_eq!(p.total_blocks(), 8);
        assert_eq!(
            p.per_disk[0].iter().map(|b| b.semantic).collect::<Vec<_>>(),
            vec![0, 4]
        );
        assert_eq!(
            p.per_disk[3].iter().map(|b| b.semantic).collect::<Vec<_>>(),
            vec![3, 7]
        );
    }

    #[test]
    fn rraid_rotates_replicas() {
        // Figure 6-1d: 8 blocks, 2 replicas, 4 disks.
        let p = Placement::rraid(8, 16, 4);
        assert_eq!(p.total_blocks(), 16);
        // Disk 0: replica 0 of {0,4}, replica 1 of {3,7} (rotated by one).
        let d0: Vec<(u32, u8)> = p.per_disk[0].iter().map(|b| (b.semantic, b.copy)).collect();
        assert_eq!(d0, vec![(0, 0), (4, 0), (3, 1), (7, 1)]);
        // Every original has exactly 2 copies.
        assert!(p.copy_counts().values().all(|&c| c == 2));
    }

    #[test]
    fn rraid_partial_replica() {
        // 8 originals, 12 stored = 1.5 replicas: originals 0..4 get 2
        // copies, the rest 1.
        let p = Placement::rraid(8, 12, 4);
        assert_eq!(p.total_blocks(), 12);
        let counts = p.copy_counts();
        for i in 0..4u32 {
            assert_eq!(counts[&i], 2, "original {i}");
        }
        for i in 4..8u32 {
            assert_eq!(counts[&i], 1, "original {i}");
        }
    }

    #[test]
    fn rraid_every_original_present() {
        let p = Placement::rraid(100, 317, 7);
        let counts = p.copy_counts();
        for i in 0..100u32 {
            assert!(counts[&i] >= 1);
        }
        assert_eq!(p.total_blocks(), 317);
    }

    #[test]
    fn coded_balanced_even_split() {
        let p = Placement::coded_balanced(8, 32, 4);
        assert!(p.per_disk.iter().all(|d| d.len() == 8));
        // All semantics distinct (coded blocks are never duplicated).
        assert!(p.copy_counts().values().all(|&c| c == 1));
    }

    #[test]
    fn coded_weighted_proportional() {
        let p = Placement::coded_weighted(8, 100, &[1.0, 3.0, 1.0, 5.0]);
        let counts: Vec<usize> = p.per_disk.iter().map(|d| d.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert_eq!(counts, vec![10, 30, 10, 50]);
        assert!(p.copy_counts().values().all(|&c| c == 1));
    }

    #[test]
    fn coded_weighted_largest_remainder() {
        let p = Placement::coded_weighted(4, 10, &[1.0, 1.0, 1.0]);
        let counts: Vec<usize> = p.per_disk.iter().map(|d| d.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| (3..=4).contains(&c)));
    }

    #[test]
    fn coded_weighted_zero_weight_disk_gets_nothing() {
        let p = Placement::coded_weighted(4, 12, &[0.0, 1.0, 2.0]);
        assert_eq!(p.per_disk[0].len(), 0);
        assert_eq!(p.total_blocks(), 12);
    }

    #[test]
    fn find_on_disk() {
        let p = Placement::rraid(8, 16, 4);
        assert_eq!(p.find_on_disk(0, 0), Some(0));
        assert_eq!(p.find_on_disk(0, 3), Some(2)); // replica 1 of block 3
        assert_eq!(p.find_on_disk(0, 1), None);
    }

    #[test]
    fn from_lists_roundtrip() {
        let p = Placement::from_lists(4, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(p.disks(), 2);
        assert_eq!(p.total_blocks(), 4);
        assert_eq!(p.find_on_disk(1, 3), Some(1));
    }
}
