//! Microbenchmark for the axpy kernels: best-of-N timing of a K=32
//! RS-decode-shaped workload (32 sources folded into one destination),
//! comparing the per-source and fused vector paths against the scalar
//! reference, then a full decode sweep in the shape of `xp bench-coding`.
//! Run with:
//!
//! ```text
//! cargo run --release -p robustore-erasure --example axpy_micro
//! ```

use std::time::Instant;

use robustore_erasure::kernels::{gf_axpy_multi_scalar, gf_axpy_multi_vector, gf_axpy_vector};

fn main() {
    let k = 32usize;
    let block = 512 * 1024usize;
    let srcs: Vec<Vec<u8>> = (0..k)
        .map(|i| {
            (0..block)
                .map(|j| ((i * 131 + j * 17 + 5) % 256) as u8)
                .collect()
        })
        .collect();
    let coefs: Vec<u8> = (0..k).map(|i| (i * 37 + 11) as u8).collect();
    let pairs: Vec<(u8, &[u8])> = coefs
        .iter()
        .zip(&srcs)
        .map(|(&c, s)| (c, s.as_slice()))
        .collect();
    let reps = 10;

    let best = |name: &str, f: &mut dyn FnMut(&mut [u8])| {
        let mut acc = vec![0u8; block];
        let mut t_best = f64::MAX;
        for _ in 0..reps {
            acc.fill(0);
            let t = Instant::now();
            f(&mut acc);
            t_best = t_best.min(t.elapsed().as_secs_f64());
        }
        let mbps = (block * k) as f64 / 1e6 / t_best;
        println!(
            "{name:12} best {:8.3} ms  {mbps:7.0} MB/s source-bytes",
            t_best * 1e3
        );
        acc.iter().fold(0u8, |a, &b| a ^ b)
    };

    let a = best("scalar", &mut |acc| gf_axpy_multi_scalar(acc, &pairs));
    let b = best("per-source", &mut |acc| {
        for &(c, s) in &pairs {
            gf_axpy_vector(acc, c, s);
        }
    });
    let c = best("fused", &mut |acc| gf_axpy_multi_vector(acc, &pairs));
    assert_eq!(a, b);
    assert_eq!(a, c);

    // Full decode sweep in the exact shape of the xp benchmark loop —
    // fresh data/coded/rx per rep — to localize any gap between the
    // kernel rate above and the end-to-end benchmark rate.
    use robustore_erasure::{set_kernel, Kernel, ReedSolomon};
    let rs_bytes = 16usize << 20;
    for (kernel, name) in [
        (Kernel::Scalar, "decode-scalar"),
        (Kernel::Vector, "decode-vector"),
    ] {
        set_kernel(kernel);
        for kk in [4usize, 8, 16, 32] {
            let rs = ReedSolomon::new(kk, 2 * kk).unwrap();
            let blk = rs_bytes / kk;
            let data: Vec<Vec<u8>> = (0..kk)
                .map(|i| (0..blk).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
                .collect();
            let mut t_best = f64::MAX;
            for _ in 0..5 {
                let coded = rs.encode(&data).unwrap();
                let rx: Vec<(usize, Vec<u8>)> =
                    (kk..2 * kk).map(|i| (i, coded[i].clone())).collect();
                let t = Instant::now();
                let out = rs.decode(&rx).unwrap();
                t_best = t_best.min(t.elapsed().as_secs_f64());
                assert_eq!(out[0], data[0]);
            }
            let mbps = rs_bytes as f64 / 1e6 / t_best;
            println!(
                "{name:13} K={kk:2} best {:8.1} ms  {mbps:7.1} MB/s data",
                t_best * 1e3
            );
        }
    }
    set_kernel(Kernel::Vector);
}
