//! Raptor codes: a pre-code concatenated with LT codes (§2.2.3).
//!
//! Raptor codes relax LT's requirement that the LT stage recover *every*
//! input symbol: the K originals are first pre-encoded into m = K + P
//! intermediate symbols with a traditional sparse parity code, then an LT
//! code runs over the intermediates. At decode time the parity equations
//! rescue intermediates the LT peeling left unresolved, so a weaker
//! (cheaper) LT stage suffices — the linear-time-encoding idea of
//! Shokrollahi's construction.
//!
//! The paper surveys Raptor codes as background and selects plain
//! (improved) LT codes for RobuSTore; this module implements Raptor as
//! the natural extension, sharing the LT substrate. Decoding runs a
//! *joint* peeling over both equation systems via a small generic
//! sparse-XOR solver.

use rand::seq::SliceRandom;
use robustore_simkit::SeedSequence;

use crate::lt::{LtCode, LtParams};
use crate::{xor_into, Block, CodingError};

/// A Raptor code: sparse parity pre-code + (stock) LT over intermediates.
#[derive(Debug, Clone)]
pub struct RaptorCode {
    k: usize,
    /// Intermediate symbol count m = k + parity count.
    m: usize,
    n: usize,
    /// precode[p] = original ids XORed into parity intermediate k+p.
    precode: Vec<Vec<u32>>,
    /// LT stage over the m intermediates. Stock construction — the
    /// pre-code, not graph repair, supplies the resilience.
    lt: LtCode,
}

impl RaptorCode {
    /// Plan a Raptor code: `k` originals, `n` coded blocks, with
    /// ⌈`parity_fraction`·k⌉ parity intermediates (Raptor constructions
    /// use a small constant fraction; 0.05–0.15 is typical).
    pub fn plan(
        k: usize,
        n: usize,
        parity_fraction: f64,
        params: LtParams,
        seed: u64,
    ) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        if !(0.0..=1.0).contains(&parity_fraction) {
            return Err(CodingError::InvalidParameters(
                "parity fraction must be in [0, 1]".into(),
            ));
        }
        let p = ((k as f64 * parity_fraction).ceil() as usize).max(1);
        let m = k + p;
        if n == 0 {
            return Err(CodingError::InvalidParameters("N must be positive".into()));
        }
        // Regular sparse pre-code: each parity covers ~3k/p originals,
        // assigned from shuffled permutations so coverage is uniform
        // (every original lands in ≥ 3 parity equations when p ≥ 3).
        let seq = SeedSequence::new(seed);
        let mut rng = seq.fork("raptor-precode", 0);
        let repeats = 3usize;
        let mut membership: Vec<u32> = Vec::with_capacity(k * repeats);
        for _ in 0..repeats {
            let mut perm: Vec<u32> = (0..k as u32).collect();
            perm.shuffle(&mut rng);
            membership.extend(perm);
        }
        let mut precode: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (idx, orig) in membership.into_iter().enumerate() {
            let eqn = &mut precode[idx % p];
            if !eqn.contains(&orig) {
                eqn.push(orig);
            }
        }
        for eqn in &mut precode {
            eqn.sort_unstable();
        }

        let lt = LtCode::plan_stock(m, n, params, seq.seed_for("raptor-lt", 0))?;
        Ok(RaptorCode {
            k,
            m,
            n,
            precode,
            lt,
        })
    }

    /// Original block count K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Intermediate symbol count m.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Coded block count N.
    pub fn n(&self) -> usize {
        self.n
    }

    fn intermediates(&self, data: &[Block]) -> Vec<Block> {
        let len = data[0].len();
        let mut inter: Vec<Block> = data.to_vec();
        for eqn in &self.precode {
            let mut parity = vec![0u8; len];
            for &o in eqn {
                xor_into(&mut parity, &data[o as usize]);
            }
            inter.push(parity);
        }
        inter
    }

    /// Encode K data blocks into N coded blocks.
    pub fn encode(&self, data: &[Block]) -> Result<Vec<Block>, CodingError> {
        if data.len() != self.k {
            return Err(CodingError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        self.lt.encode(&self.intermediates(data))
    }

    /// Decode from `(coded_index, block)` pairs by joint peeling over the
    /// LT equations and the pre-code parity equations. Succeeds as soon
    /// as the K *original* intermediates are resolved (parities may stay
    /// unknown — Raptor's whole point).
    pub fn decode(&self, received: &[(usize, Block)]) -> Result<Vec<Block>, CodingError> {
        if received.is_empty() {
            return Err(CodingError::NotEnoughBlocks {
                got: 0,
                need: self.k,
            });
        }
        let len = received[0].1.len();
        if received.iter().any(|(_, b)| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        // Equation system over the m intermediates.
        let mut equations: Vec<(Block, Vec<u32>)> =
            Vec::with_capacity(received.len() + self.precode.len());
        for (j, data) in received {
            if *j >= self.n {
                return Err(CodingError::InvalidBlockIndex(*j));
            }
            equations.push((data.clone(), self.lt.neighbors(*j).to_vec()));
        }
        // parity eqn p: intermediate (k+p) ⊕ its originals = 0.
        for (p, eqn) in self.precode.iter().enumerate() {
            let mut vars = eqn.clone();
            vars.push((self.k + p) as u32);
            equations.push((vec![0u8; len], vars));
        }
        let solved = peel_sparse_xor(self.m, equations);
        let mut out = Vec::with_capacity(self.k);
        // Move solutions out of the solver's slots — no output copies.
        for slot in solved.into_iter().take(self.k) {
            match slot {
                Some(b) => out.push(b),
                None => return Err(CodingError::DecodeFailed),
            }
        }
        Ok(out)
    }
}

/// Generic sparse-XOR peeling solver: given equations `value = ⊕ vars`,
/// iteratively resolve variables from degree-1 equations. Returns the
/// per-variable solutions found (peeling is not full Gaussian
/// elimination; unresolved variables stay `None`).
pub fn peel_sparse_xor(num_vars: usize, equations: Vec<(Block, Vec<u32>)>) -> Vec<Option<Block>> {
    let mut solved: Vec<Option<Block>> = vec![None; num_vars];
    let mut remaining: Vec<usize> = Vec::with_capacity(equations.len());
    let mut eqs: Vec<Option<(Block, Vec<u32>)>> = Vec::with_capacity(equations.len());
    let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
    for (e, (val, vars)) in equations.into_iter().enumerate() {
        for &v in &vars {
            incidence[v as usize].push(e as u32);
        }
        remaining.push(vars.len());
        eqs.push(Some((val, vars)));
    }
    let mut worklist: Vec<u32> = (0..eqs.len() as u32)
        .filter(|&e| remaining[e as usize] == 1)
        .collect();
    while let Some(e) = worklist.pop() {
        let e = e as usize;
        if remaining[e] != 1 {
            continue;
        }
        let (mut val, vars) = eqs[e].take().expect("live equation");
        remaining[e] = 0;
        let mut target = None;
        for &v in &vars {
            match &solved[v as usize] {
                Some(known) => xor_into(&mut val, known),
                None => target = Some(v as usize),
            }
        }
        let Some(target) = target else { continue };
        solved[target] = Some(val);
        for &other in &incidence[target] {
            let o = other as usize;
            if remaining[o] > 0 {
                remaining[o] -= 1;
                if remaining[o] == 1 {
                    worklist.push(other);
                }
            }
        }
    }
    solved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 59 + j * 17 + 1) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn roundtrip_full_set() {
        let code = RaptorCode::plan(48, 160, 0.1, LtParams::default(), 5).unwrap();
        let data = make_data(48, 32);
        let coded = code.encode(&data).unwrap();
        let rx: Vec<_> = coded.into_iter().enumerate().collect();
        assert_eq!(code.decode(&rx).unwrap(), data);
        assert_eq!(code.m(), 48 + 5);
    }

    #[test]
    fn precode_rescues_stock_lt_stalls() {
        // Same stock LT shape with and without the parity pre-code: the
        // Raptor variant must decode strictly more often from a tight
        // block budget.
        let k = 64;
        let n = 120;
        let take = 110;
        let mut lt_ok = 0;
        let mut raptor_ok = 0;
        let trials = 30u64;
        for seed in 0..trials {
            let data = make_data(k, 8);
            let raptor = RaptorCode::plan(k, n, 0.12, LtParams::default(), seed).unwrap();
            let coded = raptor.encode(&data).unwrap();
            let rx: Vec<_> = (0..take).map(|j| (j, coded[j].clone())).collect();
            if raptor.decode(&rx).is_ok() {
                raptor_ok += 1;
            }
            // Plain stock LT over k originals with the same budget.
            let lt = LtCode::plan_stock(k, n, LtParams::default(), seed).unwrap();
            let lt_coded = lt.encode(&data).unwrap();
            let mut dec = crate::lt::LtDecoder::new(&lt, 8);
            let mut done = false;
            for (j, b) in lt_coded.into_iter().enumerate().take(take) {
                if dec.receive(j, b) {
                    done = true;
                    break;
                }
            }
            if done {
                lt_ok += 1;
            }
        }
        assert!(
            raptor_ok > lt_ok,
            "pre-code should rescue stalls: raptor {raptor_ok}/{trials} vs stock LT {lt_ok}/{trials}"
        );
    }

    #[test]
    fn decode_failure_reported_not_wrong() {
        let code = RaptorCode::plan(32, 96, 0.1, LtParams::default(), 9).unwrap();
        let data = make_data(32, 8);
        let coded = code.encode(&data).unwrap();
        // Ten blocks cannot possibly cover 32 originals.
        let rx: Vec<_> = (0..10).map(|j| (j, coded[j].clone())).collect();
        assert_eq!(code.decode(&rx), Err(CodingError::DecodeFailed));
    }

    #[test]
    fn invalid_parameters() {
        assert!(RaptorCode::plan(0, 10, 0.1, LtParams::default(), 1).is_err());
        assert!(RaptorCode::plan(10, 0, 0.1, LtParams::default(), 1).is_err());
        assert!(RaptorCode::plan(10, 20, 1.5, LtParams::default(), 1).is_err());
    }

    #[test]
    fn peeling_solver_solves_triangular_system() {
        // x0 = a; x1 = a ⊕ b (eqn {0,1} = b-ish)... build:
        // e0: x0 = [1,1]; e1: x0⊕x1 = [3,3]; e2: x1⊕x2 = [7,7]
        let eqs = vec![
            (vec![1u8, 1], vec![0]),
            (vec![3u8, 3], vec![0, 1]),
            (vec![7u8, 7], vec![1, 2]),
        ];
        let solved = peel_sparse_xor(3, eqs);
        assert_eq!(solved[0].as_deref(), Some(&[1u8, 1][..]));
        assert_eq!(solved[1].as_deref(), Some(&[2u8, 2][..]));
        assert_eq!(solved[2].as_deref(), Some(&[5u8, 5][..]));
    }

    #[test]
    fn peeling_solver_leaves_cycles_unresolved() {
        // x0⊕x1 and x1⊕x0: a 2-cycle peeling cannot break.
        let eqs = vec![(vec![1u8], vec![0, 1]), (vec![1u8], vec![0, 1])];
        let solved = peel_sparse_xor(2, eqs);
        assert!(solved[0].is_none());
        assert!(solved[1].is_none());
    }

    #[test]
    fn every_original_in_multiple_parities() {
        let code = RaptorCode::plan(40, 120, 0.15, LtParams::default(), 4).unwrap();
        let mut count = vec![0usize; 40];
        for eqn in &code.precode {
            for &o in eqn {
                count[o as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c >= 2), "coverage: {count:?}");
    }
}
