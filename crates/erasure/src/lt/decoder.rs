//! Lazy-XOR LT data decoder.
//!
//! §5.2.3 improvement 3: the greedy decoder XORs every arriving coded block
//! against already-decoded originals immediately, producing intermediate
//! values that may never help. The lazy decoder stores arriving blocks
//! untouched and performs XORs only at the moment a coded block *resolves*
//! an original (its undecoded-neighbour count reaches one):
//!
//! ```text
//! original = coded_data ⊕ (⊕ decoded neighbours)
//! ```
//!
//! Each graph edge is then charged at most one block XOR, and the XORs
//! happen on freshly-touched buffers — the memory-locality argument in the
//! paper.
//!
//! Beyond the paper: [`LtDecoder::solve`] adds a Gaussian-elimination
//! fallback (inactivation decoding) for when the peel stalls. The planner
//! guarantees the *full* N-block set peels, but an arbitrary subset — a
//! store that has lost blocks — can stall the ripple while still having
//! full rank over GF(2). Callers that have exhausted every available
//! block invoke `solve()` before declaring the decode failed, so
//! `DecodeFailed` means "mathematically insufficient", never "the peel
//! got unlucky".

use super::LtCode;
use crate::{xor_into, Block};

/// Incremental decoder holding block data.
pub struct LtDecoder<'a> {
    code: &'a LtCode,
    block_len: usize,
    decoded: Vec<Option<Block>>,
    /// Data of received, still-unresolved coded blocks.
    pending_data: Vec<Option<Block>>,
    /// Undecoded-neighbour count per received coded block (`u32::MAX` =
    /// not received).
    remaining: Vec<u32>,
    /// incidence[i] = unresolved received coded blocks containing original i.
    incidence: Vec<Vec<u32>>,
    /// Buffers of duplicate/redundant/post-completion arrivals, kept for
    /// recycling into a [`crate::kernels::BlockPool`] instead of dropped.
    spares: Vec<Block>,
    decoded_count: usize,
    received_count: usize,
    xor_ops: usize,
}

impl<'a> LtDecoder<'a> {
    /// A decoder for `code` over blocks of `block_len` bytes.
    pub fn new(code: &'a LtCode, block_len: usize) -> Self {
        LtDecoder {
            code,
            block_len,
            decoded: vec![None; code.k()],
            pending_data: vec![None; code.n()],
            remaining: vec![u32::MAX; code.n()],
            incidence: vec![Vec::new(); code.k()],
            spares: Vec::new(),
            decoded_count: 0,
            received_count: 0,
            xor_ops: 0,
        }
    }

    /// Feed coded block `j` with its data, taking ownership — the buffer
    /// is decoded in place, never copied. Returns `true` once all K
    /// originals are decoded. Duplicates and post-completion arrivals are
    /// ignored (they occur naturally under speculative access: cancelled
    /// requests may already have bytes in flight, §4.1.2); their buffers
    /// land in [`LtDecoder::drain_spares`] for pool recycling.
    pub fn receive(&mut self, j: usize, data: Block) -> bool {
        assert!(j < self.code.n(), "coded index out of range");
        assert_eq!(data.len(), self.block_len, "block length mismatch");
        if self.is_complete() || self.remaining[j] != u32::MAX {
            self.spares.push(data);
            return self.is_complete();
        }
        self.received_count += 1;
        let mut undecoded = 0u32;
        for &i in self.code.neighbors(j) {
            if self.decoded[i as usize].is_none() {
                undecoded += 1;
                self.incidence[i as usize].push(j as u32);
            }
        }
        self.remaining[j] = undecoded;
        if undecoded == 0 {
            self.spares.push(data);
            return self.is_complete();
        }
        self.pending_data[j] = Some(data);
        if undecoded == 1 {
            self.resolve_from(j);
        }
        self.is_complete()
    }

    fn resolve_from(&mut self, start: usize) {
        let mut worklist = vec![start as u32];
        while let Some(j) = worklist.pop() {
            let j = j as usize;
            if self.remaining[j] != 1 {
                continue;
            }
            let mut buf = self.pending_data[j]
                .take()
                .expect("unresolved block has data");
            let mut target = None;
            for &i in self.code.neighbors(j) {
                match &self.decoded[i as usize] {
                    Some(known) => {
                        xor_into(&mut buf, known);
                        self.xor_ops += 1;
                    }
                    None => {
                        debug_assert!(target.is_none(), "remaining==1 invariant");
                        target = Some(i as usize);
                    }
                }
            }
            let target = target.expect("one undecoded neighbour");
            self.remaining[j] = 0;
            self.decoded[target] = Some(buf);
            self.decoded_count += 1;
            let incident = std::mem::take(&mut self.incidence[target]);
            for &other in &incident {
                let o = other as usize;
                if self.remaining[o] != u32::MAX && self.remaining[o] > 0 {
                    self.remaining[o] -= 1;
                    if self.remaining[o] == 1 {
                        worklist.push(other);
                    }
                }
            }
        }
    }

    /// Gaussian-elimination fallback for a stalled peel (inactivation
    /// decoding). Every received-but-unresolved coded block becomes one
    /// GF(2) equation over the still-undecoded originals (its data
    /// pre-reduced by the already-decoded neighbours); elimination with
    /// on-line reduction then back-substitution recovers all of them iff
    /// the system has full rank. Returns `true` when the decode is
    /// complete afterwards.
    ///
    /// Call this only once no further blocks can arrive — it consumes the
    /// pending blocks. On `false` the decoder is spent: every consumed
    /// buffer moves to the spare list so [`LtDecoder::drain_all`] (or
    /// [`LtDecoder::drain_spares`]) still reclaims everything. Block XORs
    /// performed here are charged to [`LtDecoder::xor_ops`] like any
    /// other.
    pub fn solve(&mut self) -> bool {
        if self.is_complete() {
            return true;
        }
        let k = self.code.k();
        // Dense GE columns for the undecoded originals.
        let mut col_of = vec![usize::MAX; k];
        let mut unknowns: Vec<usize> = Vec::new();
        for (i, col) in col_of.iter_mut().enumerate().take(k) {
            if self.decoded[i].is_none() {
                *col = unknowns.len();
                unknowns.push(i);
            }
        }
        let u = unknowns.len();
        let words = u.div_ceil(64);

        // Pivot rows in establishment order: coefficient bitsets and data
        // kept in parallel vectors (data is taken during back-substitution).
        let mut bit_rows: Vec<Vec<u64>> = Vec::new();
        let mut data_rows: Vec<Option<Block>> = Vec::new();
        let mut pivot_col: Vec<usize> = Vec::new();
        let mut pivot_of: Vec<Option<usize>> = vec![None; u];

        for j in 0..self.code.n() {
            let Some(mut data) = self.pending_data[j].take() else {
                continue;
            };
            self.remaining[j] = 0; // consumed by the solver
            let mut bits = vec![0u64; words];
            for &i in self.code.neighbors(j) {
                let i = i as usize;
                match &self.decoded[i] {
                    Some(known) => {
                        xor_into(&mut data, known);
                        self.xor_ops += 1;
                    }
                    None => {
                        let c = col_of[i];
                        bits[c / 64] ^= 1u64 << (c % 64);
                    }
                }
            }
            // On-line reduction against established pivots; a row that
            // reduces to zero is redundant and its buffer recycles.
            loop {
                let Some(c) = lowest_set(&bits) else {
                    self.spares.push(data);
                    break;
                };
                match pivot_of[c] {
                    Some(r) => {
                        for (b, pw) in bits.iter_mut().zip(&bit_rows[r]) {
                            *b ^= pw;
                        }
                        xor_into(&mut data, data_rows[r].as_ref().expect("pivot holds data"));
                        self.xor_ops += 1;
                    }
                    None => {
                        pivot_of[c] = Some(bit_rows.len());
                        pivot_col.push(c);
                        bit_rows.push(bits);
                        data_rows.push(Some(data));
                        break;
                    }
                }
            }
        }

        if bit_rows.len() < u {
            // Rank-deficient: genuinely not decodable from what arrived.
            // Recycle the pivot buffers; the decoder is spent.
            self.spares.extend(data_rows.into_iter().flatten());
            return false;
        }

        // Back-substitute in decreasing pivot-column order: elimination
        // ran lowest-bit-first, so a pivot row's leftover bits all sit in
        // strictly higher columns — whose rows are fully reduced to
        // singletons by the time this loop reaches it.
        for own in (0..u).rev() {
            let r = pivot_of[own].expect("full rank: every column has a pivot");
            let mut d = data_rows[r].take().expect("pivot row has data");
            for (w, &row_word) in bit_rows[r].iter().enumerate() {
                let mut word = row_word;
                while word != 0 {
                    let c = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if c == own {
                        continue;
                    }
                    let r2 = pivot_of[c].expect("full rank: every column has a pivot");
                    xor_into(
                        &mut d,
                        data_rows[r2].as_ref().expect("later pivot reduced first"),
                    );
                    self.xor_ops += 1;
                }
            }
            data_rows[r] = Some(d);
        }
        for r in 0..bit_rows.len() {
            let original = unknowns[pivot_col[r]];
            self.decoded[original] = data_rows[r].take();
            self.decoded_count += 1;
        }
        debug_assert!(self.is_complete());
        true
    }

    /// True when every original block is decoded.
    pub fn is_complete(&self) -> bool {
        self.decoded_count == self.code.k()
    }

    /// Distinct coded blocks received so far.
    pub fn received(&self) -> usize {
        self.received_count
    }

    /// Originals decoded so far.
    pub fn decoded_count(&self) -> usize {
        self.decoded_count
    }

    /// Block XOR operations performed (the lazy decoder's cost metric).
    pub fn xor_ops(&self) -> usize {
        self.xor_ops
    }

    /// Reception overhead so far: received/K − 1.
    pub fn reception_overhead(&self) -> f64 {
        self.received_count as f64 / self.code.k() as f64 - 1.0
    }

    /// Take the buffers of arrivals that contributed nothing (duplicates,
    /// fully-redundant blocks, post-completion stragglers — plus, once
    /// decoding is complete, received blocks the peel never resolved) so
    /// callers can return them to a [`crate::kernels::BlockPool`].
    pub fn drain_spares(&mut self) -> Vec<Block> {
        let mut out = std::mem::take(&mut self.spares);
        if self.is_complete() {
            out.extend(self.pending_data.iter_mut().filter_map(Option::take));
        }
        out
    }

    /// Abandon the decode: take *every* buffer the decoder holds —
    /// spares, unresolved arrivals, and already-decoded originals — so a
    /// failed or aborted read can return them all to a
    /// [`crate::kernels::BlockPool`] instead of leaking them. The
    /// decoder is spent afterwards; feed it nothing more.
    pub fn drain_all(&mut self) -> Vec<Block> {
        let mut out = std::mem::take(&mut self.spares);
        out.extend(self.pending_data.iter_mut().filter_map(Option::take));
        out.extend(self.decoded.iter_mut().filter_map(Option::take));
        out
    }

    /// Extract the decoded data; `None` if decoding is incomplete.
    pub fn into_data(self) -> Option<Vec<Block>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            self.decoded
                .into_iter()
                .map(|b| b.expect("complete decode has every block"))
                .collect(),
        )
    }
}

/// Index of the lowest set bit across a little-endian word array.
fn lowest_set(bits: &[u64]) -> Option<usize> {
    for (w, &word) in bits.iter().enumerate() {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::BlockPool;
    use crate::lt::{peel::SymbolDecoder, LtParams};
    use rand::seq::SliceRandom;
    use robustore_simkit::SeedSequence;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 53 + j * 29 + 9) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    /// Turn an encoded set into single-use owned blocks, so tests feed the
    /// decoder by move (ownership, not clones).
    fn take_by_move(coded: Vec<Block>) -> Vec<Option<Block>> {
        coded.into_iter().map(Some).collect()
    }

    #[test]
    fn data_decoder_agrees_with_symbol_decoder() {
        // The index-only decoder used by the simulator must complete at
        // exactly the same arrival as the real data decoder.
        let code = LtCode::plan(96, 384, LtParams::default(), 55).unwrap();
        let data = make_data(96, 32);
        let mut coded = take_by_move(code.encode(&data).unwrap());
        let mut order: Vec<usize> = (0..code.n()).collect();
        let mut rng = SeedSequence::new(8).fork("order", 0);
        order.shuffle(&mut rng);

        let mut sym = SymbolDecoder::new(&code);
        let mut dat = LtDecoder::new(&code, 32);
        for &j in &order {
            let s_done = sym.receive(j);
            let d_done = dat.receive(j, coded[j].take().unwrap());
            assert_eq!(s_done, d_done, "divergence at block {j}");
            if s_done {
                break;
            }
        }
        assert_eq!(sym.received(), dat.received());
        assert_eq!(dat.into_data().unwrap(), data);
    }

    #[test]
    fn lazy_xor_cost_is_bounded_by_edges() {
        let code = LtCode::plan(128, 512, LtParams::default(), 56).unwrap();
        let data = make_data(128, 16);
        let coded = code.encode(&data).unwrap();
        let mut dec = LtDecoder::new(&code, 16);
        for (j, block) in coded.into_iter().enumerate() {
            if dec.receive(j, block) {
                break;
            }
        }
        assert!(dec.is_complete());
        // Lazy decoding touches each edge of a *used* block once; total
        // XORs can never exceed the full edge count.
        assert!(dec.xor_ops() <= code.edge_count());
    }

    #[test]
    fn duplicate_and_late_blocks_ignored() {
        let code = LtCode::plan(32, 128, LtParams::default(), 57).unwrap();
        let data = make_data(32, 8);
        let coded = code.encode(&data).unwrap();
        let mut dec = LtDecoder::new(&code, 8);
        for (j, block) in coded.iter().enumerate() {
            dec.receive(j, block.clone());
            dec.receive(j, block.clone()); // duplicate
            if dec.is_complete() {
                break;
            }
        }
        let at_completion = dec.received();
        // A straggler arriving after completion changes nothing.
        assert!(dec.receive(code.n() - 1, coded[code.n() - 1].clone()));
        assert_eq!(dec.received(), at_completion);
        // Every duplicate/straggler buffer is recoverable for pooling.
        assert!(dec.drain_spares().len() >= at_completion);
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn decode_is_zero_copy() {
        // Ownership pass: every decoded original must live in one of the
        // exact buffers fed to `receive` — no hidden copies anywhere in
        // the peel. Pointer identity is the strongest possible witness.
        let code = LtCode::plan(64, 256, LtParams::default(), 60).unwrap();
        let data = make_data(64, 48);
        let mut coded = take_by_move(code.encode(&data).unwrap());
        let mut order: Vec<usize> = (0..code.n()).collect();
        let mut rng = SeedSequence::new(9).fork("order", 0);
        order.shuffle(&mut rng);

        let mut fed: Vec<*const u8> = Vec::new();
        let mut dec = LtDecoder::new(&code, 48);
        for &j in &order {
            let block = coded[j].take().unwrap();
            fed.push(block.as_ptr());
            if dec.receive(j, block) {
                break;
            }
        }
        assert!(dec.is_complete());
        let spares: Vec<*const u8> = dec.drain_spares().iter().map(|b| b.as_ptr()).collect();
        let decoded = dec.into_data().unwrap();
        assert_eq!(decoded, data);
        for (i, b) in decoded.iter().enumerate() {
            assert!(
                fed.contains(&b.as_ptr()),
                "original {i} was copied instead of moved"
            );
        }
        // Fed buffers are fully accounted for: decoded + recyclable spares.
        assert_eq!(decoded.len() + spares.len(), fed.len());
    }

    #[test]
    fn pooled_request_loop_stops_allocating_after_warmup() {
        // The BlockPool byte-allocation counter proves the
        // encode/receive/decode path allocates nothing itself: seed the
        // pool with enough buffers for one trial (a trial feeds at most N
        // blocks) and both trials run entirely on recycled buffers.
        let code = LtCode::plan(48, 192, LtParams::default(), 61).unwrap();
        let data = make_data(48, 32);
        let mut pool = BlockPool::new(32);
        pool.put_all((0..code.n()).map(|_| vec![0u8; 32]));
        for trial in 0..2u64 {
            let mut order: Vec<usize> = (0..code.n()).collect();
            order.shuffle(&mut SeedSequence::new(10).fork("order", trial));
            let mut dec = LtDecoder::new(&code, 32);
            for &j in &order {
                let mut buf = pool.get();
                code.encode_block_into(&data, j, &mut buf);
                if dec.receive(j, buf) {
                    break;
                }
            }
            assert!(dec.is_complete());
            pool.put_all(dec.drain_spares());
            let decoded = dec.into_data().unwrap();
            assert_eq!(decoded, data);
            pool.put_all(decoded);
            assert_eq!(
                pool.allocated_bytes(),
                0,
                "trial {trial} allocated (hidden copy or leak otherwise)"
            );
        }
        assert!(pool.reuses() > 0);
    }

    #[test]
    fn incomplete_returns_none() {
        let code = LtCode::plan(32, 128, LtParams::default(), 58).unwrap();
        let data = make_data(32, 8);
        let mut coded = take_by_move(code.encode(&data).unwrap());
        let mut dec = LtDecoder::new(&code, 8);
        dec.receive(0, coded[0].take().unwrap());
        assert!(!dec.is_complete());
        assert!(dec.into_data().is_none());
    }

    #[test]
    fn drain_all_reclaims_every_fed_buffer() {
        // An abandoned decode must account for every buffer it was fed:
        // whatever state each arrival is in (spare, pending, or already
        // peeled into a decoded original), drain_all hands it back.
        let code = LtCode::plan(32, 128, LtParams::default(), 62).unwrap();
        let data = make_data(32, 8);
        let mut coded = take_by_move(code.encode(&data).unwrap());
        let mut dec = LtDecoder::new(&code, 8);
        let fed = 20usize; // partial: decode incomplete
        for (j, block) in coded.iter_mut().enumerate().take(fed) {
            dec.receive(j, block.take().unwrap());
            dec.receive(j, vec![0u8; 8]); // duplicate lands in spares
        }
        assert!(!dec.is_complete());
        let drained = dec.drain_all();
        assert_eq!(drained.len(), 2 * fed, "every fed buffer reclaimed");
        assert!(drained.iter().all(|b| b.len() == 8));
        assert!(dec.drain_all().is_empty(), "second drain finds nothing");
    }

    /// GF(2) rank of the survivor equations, by dense elimination over
    /// u64 bitmasks (independent of the decoder under test; k ≤ 64).
    fn subset_rank(code: &LtCode, survivors: &[usize]) -> usize {
        let mut rows: Vec<u64> = survivors
            .iter()
            .map(|&j| code.neighbors(j).iter().fold(0u64, |m, &i| m | 1 << i))
            .collect();
        let mut rank = 0;
        for c in 0..code.k() {
            if let Some(p) = (rank..rows.len()).find(|&r| rows[r] >> c & 1 == 1) {
                rows.swap(rank, p);
                let pv = rows[rank];
                for (r, row) in rows.iter_mut().enumerate() {
                    if r != rank && *row >> c & 1 == 1 {
                        *row ^= pv;
                    }
                }
                rank += 1;
            }
        }
        rank
    }

    /// Find a (seed, loss pattern) where pure peeling stalls on the
    /// surviving subset even though it has full rank — the situation a
    /// store that lost blocks puts the decoder in.
    fn stalled_case(k: usize, n: usize, drop: usize) -> (LtCode, Vec<usize>) {
        for seed in 0..500u64 {
            let code = LtCode::plan(k, n, LtParams::recommended(), seed).unwrap();
            for pattern in 0..20u64 {
                let mut rng = SeedSequence::new(seed).fork("drop", pattern);
                let mut survivors: Vec<usize> = (0..n).collect();
                survivors.shuffle(&mut rng);
                survivors.truncate(n - drop);
                let mut probe = SymbolDecoder::new(&code);
                let stalled = !survivors.iter().any(|&j| probe.receive(j));
                if stalled && subset_rank(&code, &survivors) == k {
                    return (code, survivors);
                }
            }
        }
        panic!("no stalled full-rank peel found — loosen the search");
    }

    #[test]
    fn ge_fallback_rescues_a_stalled_peel() {
        // k=30, n=75, 25 lost: some loss patterns stall the peel even
        // though the survivors still span all originals over GF(2). The
        // GE fallback must recover exactly the original data from such
        // a subset.
        let (code, survivors) = stalled_case(30, 75, 25);
        let data = make_data(30, 32);
        let coded = code.encode(&data).unwrap();
        let mut dec = LtDecoder::new(&code, 32);
        for &j in &survivors {
            assert!(!dec.receive(j, coded[j].clone()), "peel must stall");
        }
        assert!(!dec.is_complete());
        assert!(dec.solve(), "full-rank subset must solve");
        // Every fed buffer is accounted for: decoded originals plus
        // recyclable spares (redundant GE rows, pre-solve spares).
        let spares = dec.drain_spares().len();
        let decoded = dec.into_data().unwrap();
        assert_eq!(decoded, data);
        assert_eq!(decoded.len() + spares, survivors.len());
    }

    #[test]
    fn solve_is_a_cheap_no_op_when_already_complete() {
        let code = LtCode::plan(32, 128, LtParams::default(), 77).unwrap();
        let data = make_data(32, 8);
        let coded = code.encode(&data).unwrap();
        let mut dec = LtDecoder::new(&code, 8);
        for (j, b) in coded.into_iter().enumerate() {
            if dec.receive(j, b) {
                break;
            }
        }
        let xors = dec.xor_ops();
        assert!(dec.solve());
        assert_eq!(dec.xor_ops(), xors, "no work when the peel finished");
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn solve_refuses_a_rank_deficient_subset_and_leaks_nothing() {
        let code = LtCode::plan(32, 128, LtParams::default(), 78).unwrap();
        let data = make_data(32, 8);
        let coded = code.encode(&data).unwrap();
        let mut dec = LtDecoder::new(&code, 8);
        // 10 blocks cannot span 32 unknowns: rank must be deficient.
        let fed = 10usize;
        for (j, block) in coded.iter().enumerate().take(fed) {
            dec.receive(j, block.clone());
        }
        assert!(!dec.solve());
        assert!(!dec.is_complete());
        // All fed buffers are reclaimable after the failed solve.
        assert_eq!(dec.drain_all().len(), fed);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_block_length_panics() {
        let code = LtCode::plan(8, 16, LtParams::default(), 59).unwrap();
        let mut dec = LtDecoder::new(&code, 8);
        dec.receive(0, vec![0u8; 9]);
    }
}
