//! Luby Transform codes with RobuSTore's storage-oriented improvements.
//!
//! The paper selects LT codes for RobuSTore (§5.2.1) because they are
//! rateless, use a single level of bipartite XOR structure, and pipeline
//! with I/O. Stock LT codes are optimised for communication, so §5.2.3
//! adapts them for storage:
//!
//! 1. **Guaranteed decodability** — the writer generates the coding graph
//!    *first*, checks by peeling (no data XORs) that the N-block prefix
//!    decodes, and regenerates until it does. We additionally repair a
//!    stubborn graph by converting unused coded blocks into degree-1 copies
//!    of still-uncovered originals, which bounds generation time while
//!    keeping the guarantee absolute.
//! 2. **Uniform coverage** — instead of choosing each coded block's
//!    neighbours independently at random (which leaves some originals
//!    under-covered), neighbours are consumed from successive random
//!    permutations of the originals, so original-block degrees differ by at
//!    most one per permutation round ("pseudo-random selection").
//! 3. **Lazy XOR decoding** — block XORs happen only when a coded block
//!    actually resolves an original ([`LtDecoder`]), never to produce
//!    intermediate values.
//! 4. **Wide XOR kernels** — see [`crate::kernels`]: 32-byte-chunk loops
//!    with a byte-at-a-time scalar reference for differential testing.
//!
//! [`SymbolDecoder`] runs the same peeling on indices only; the simulator
//! uses it to find how many blocks an access needs (reception overhead)
//! without touching data.

mod decoder;
mod greedy;
mod peel;

pub use decoder::LtDecoder;
pub use greedy::GreedyDecoder;
pub use peel::{blocks_needed, SymbolDecoder};

use rand::seq::SliceRandom;

use crate::soliton::RobustSoliton;
use crate::{xor_into, Block, CodingError};
use robustore_simkit::SeedSequence;

/// Tunable parameters of the LT code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LtParams {
    /// Degree-distribution parameter C: larger C ⇒ more low-degree coded
    /// blocks ⇒ less CPU, more reception overhead (Figures 5-1/5-2).
    pub c: f64,
    /// Degree-distribution parameter δ: smaller δ ⇒ denser coverage ⇒ less
    /// reception overhead, more CPU.
    pub delta: f64,
    /// How many fresh graphs to try before falling back to graph repair.
    pub max_graph_attempts: usize,
}

impl Default for LtParams {
    /// The paper's simulation configuration (§6.2.5): C = 1.0, δ = 0.5,
    /// giving ≈0.5 reception overhead at K = 1024.
    fn default() -> Self {
        LtParams {
            c: 1.0,
            delta: 0.5,
            max_graph_attempts: 20,
        }
    }
}

impl LtParams {
    /// The paper's recommended client configuration (§5.2.4): C = 1.0,
    /// δ = 0.1.
    pub fn recommended() -> Self {
        LtParams {
            c: 1.0,
            delta: 0.1,
            ..Default::default()
        }
    }
}

/// A planned LT code instance: K originals, N coded blocks, and the coding
/// graph, guaranteed decodable from the full set of N blocks.
#[derive(Debug, Clone)]
pub struct LtCode {
    k: usize,
    n: usize,
    params: LtParams,
    seed: u64,
    /// Adjacency in CSR form: coded block `j` has neighbours
    /// `adjacency[offsets[j]..offsets[j+1]]` (distinct original ids).
    offsets: Vec<u32>,
    adjacency: Vec<u32>,
    /// Graph-generation diagnostics.
    attempts: usize,
    repairs: usize,
}

impl LtCode {
    /// Plan a decodable LT code for `k` originals and `n ≥ k` coded blocks.
    ///
    /// Deterministic in (`k`, `n`, `params`, `seed`): the writer and every
    /// reader reconstruct the identical graph from the metadata tuple, so
    /// the graph itself never needs to be stored.
    pub fn plan(k: usize, n: usize, params: LtParams, seed: u64) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        if n < k {
            return Err(CodingError::InvalidParameters(format!(
                "N ({n}) must be at least K ({k}) for guaranteed decodability"
            )));
        }
        let soliton = RobustSoliton::new(k, params.c, params.delta);
        let seq = SeedSequence::new(seed);

        for attempt in 0..params.max_graph_attempts.max(1) {
            let (offsets, adjacency) = generate_graph(k, n, &soliton, &seq, attempt as u64);
            let mut code = LtCode {
                k,
                n,
                params,
                seed,
                offsets,
                adjacency,
                attempts: attempt + 1,
                repairs: 0,
            };
            let (decodable, missing, unused) = {
                let mut probe = SymbolDecoder::new(&code);
                let mut done = false;
                for j in 0..n {
                    if probe.receive(j) {
                        done = true;
                        break;
                    }
                }
                let missing: Vec<u32> = (0..k)
                    .filter(|&i| !probe.is_original_decoded(i))
                    .map(|i| i as u32)
                    .collect();
                let unused: Vec<usize> = (0..n).filter(|&j| !probe.was_used(j)).collect();
                (done, missing, unused)
            };
            if decodable {
                return Ok(code);
            }
            if attempt + 1 == params.max_graph_attempts.max(1) {
                // Last attempt: repair instead of failing. Convert coded
                // blocks the peel never used into degree-1 blocks covering
                // the still-missing originals.
                code.repair(&missing, &unused);
                debug_assert!(code.check_decodable());
                return Ok(code);
            }
        }
        unreachable!("loop always returns on the final attempt")
    }

    /// Plan a *stock* LT code: neighbours drawn independently uniformly
    /// at random (Luby's original construction) with **no decodability
    /// check, no uniform coverage, no repair**. This is the ablation
    /// baseline for the §5.2.3 improvements: unlike [`LtCode::plan`], the
    /// resulting graph may fail to decode even from all N blocks — exactly
    /// the storage-unfriendly behaviour the paper's improvements remove.
    pub fn plan_stock(
        k: usize,
        n: usize,
        params: LtParams,
        seed: u64,
    ) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        if n == 0 {
            return Err(CodingError::InvalidParameters("N must be positive".into()));
        }
        let soliton = RobustSoliton::new(k, params.c, params.delta);
        let seq = SeedSequence::new(seed);
        let mut deg_rng = seq.fork("stock-degree", 0);
        let mut pick_rng = seq.fork("stock-pick", 0);

        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacency: Vec<u32> = Vec::with_capacity(n * 6);
        offsets.push(0u32);
        let mut scratch: Vec<u32> = Vec::with_capacity(16);
        for _ in 0..n {
            let d = soliton.sample(&mut deg_rng);
            scratch.clear();
            while scratch.len() < d {
                let cand = rand::Rng::gen_range(&mut pick_rng, 0..k as u32);
                if !scratch.contains(&cand) {
                    scratch.push(cand);
                }
            }
            scratch.sort_unstable();
            adjacency.extend_from_slice(&scratch);
            offsets.push(adjacency.len() as u32);
        }
        Ok(LtCode {
            k,
            n,
            params,
            seed,
            offsets,
            adjacency,
            attempts: 1,
            repairs: 0,
        })
    }

    /// Number of original blocks K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of coded blocks N.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Degree of data redundancy D = N/K − 1.
    pub fn redundancy(&self) -> f64 {
        self.n as f64 / self.k as f64 - 1.0
    }

    /// The code's parameters.
    pub fn params(&self) -> LtParams {
        self.params
    }

    /// The seed the graph derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Graph generation attempts used (≥ 1).
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Coded blocks rewritten by graph repair (0 in the common case).
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Neighbours (original-block ids) of coded block `j`.
    #[inline]
    pub fn neighbors(&self, j: usize) -> &[u32] {
        let lo = self.offsets[j] as usize;
        let hi = self.offsets[j + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of coded block `j`.
    #[inline]
    pub fn degree(&self, j: usize) -> usize {
        (self.offsets[j + 1] - self.offsets[j]) as usize
    }

    /// Total number of edges in the coding graph.
    pub fn edge_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Mean degree of original blocks (paper: ≈ 20 at K=1024, N=4096; used
    /// by the update-access cost argument in §4.3.4).
    pub fn mean_original_degree(&self) -> f64 {
        self.adjacency.len() as f64 / self.k as f64
    }

    /// Coded blocks incident to original `i` — the blocks an update to
    /// original `i` must rewrite (§4.3.4).
    pub fn blocks_touching(&self, original: usize) -> Vec<usize> {
        assert!(original < self.k, "original id out of range");
        (0..self.n)
            .filter(|&j| self.neighbors(j).contains(&(original as u32)))
            .collect()
    }

    /// Encode `data` (K equal-length blocks) into all N coded blocks.
    pub fn encode(&self, data: &[Block]) -> Result<Vec<Block>, CodingError> {
        self.validate_data(data)?;
        Ok((0..self.n).map(|j| self.encode_block(data, j)).collect())
    }

    /// Encode on `threads` OS threads, coded blocks chunked contiguously.
    ///
    /// §7.3 names parallel coding as the route past single-core
    /// throughput ("use a cluster of workstations as a coding agent");
    /// block encodes are embarrassingly parallel since each coded block
    /// depends only on the read-only data.
    pub fn encode_parallel(
        &self,
        data: &[Block],
        threads: usize,
    ) -> Result<Vec<Block>, CodingError> {
        self.validate_data(data)?;
        let threads = threads.max(1).min(self.n);
        if threads == 1 {
            return self.encode(data);
        }
        let chunk = self.n.div_ceil(threads);
        let mut out: Vec<Block> = vec![Vec::new(); self.n];
        std::thread::scope(|scope| {
            for (t, slots) in out.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                scope.spawn(move || {
                    for (i, slot) in slots.iter_mut().enumerate() {
                        *slot = self.encode_block(data, base + i);
                    }
                });
            }
        });
        Ok(out)
    }

    /// Encode just coded block `j` — the rateless/streaming entry point
    /// used by speculative writes, which encode only as many blocks as the
    /// disks actually absorb (§4.1.1).
    pub fn encode_block(&self, data: &[Block], j: usize) -> Block {
        let mut acc = vec![0u8; data[0].len()];
        self.encode_block_into(data, j, &mut acc);
        acc
    }

    /// Encode coded block `j` into a caller-supplied buffer (typically a
    /// recycled [`crate::kernels::BlockPool`] block), so a request loop
    /// encodes without allocating.
    ///
    /// # Panics
    /// Panics if `out` is not exactly one data-block long.
    pub fn encode_block_into(&self, data: &[Block], j: usize, out: &mut [u8]) {
        assert_eq!(out.len(), data[0].len(), "output buffer length mismatch");
        out.fill(0);
        for &i in self.neighbors(j) {
            xor_into(out, &data[i as usize]);
        }
    }

    /// Convenience: decode from `(coded_index, block)` pairs in one call,
    /// consuming the blocks — decoding happens in the received buffers,
    /// copy-free. For incremental decoding use [`LtDecoder`] directly.
    pub fn decode(&self, received: Vec<(usize, Block)>) -> Result<Vec<Block>, CodingError> {
        if received.is_empty() {
            return Err(CodingError::NotEnoughBlocks {
                got: 0,
                need: self.k,
            });
        }
        let len = received[0].1.len();
        if received.iter().any(|(_, b)| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        let mut dec = LtDecoder::new(self, len);
        for (j, b) in received {
            if j >= self.n {
                return Err(CodingError::InvalidBlockIndex(j));
            }
            if dec.receive(j, b) {
                return Ok(dec.into_data().expect("decoder reported completion"));
            }
        }
        // Peel stalled with everything received: fall back to Gaussian
        // elimination before giving up (see [`LtDecoder::solve`]).
        if dec.solve() {
            return Ok(dec.into_data().expect("solver reported completion"));
        }
        Err(CodingError::DecodeFailed)
    }

    fn validate_data(&self, data: &[Block]) -> Result<(), CodingError> {
        if data.len() != self.k {
            return Err(CodingError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        Ok(())
    }

    /// Replace unused coded blocks with degree-1 covers of undecoded
    /// originals, making the full graph decodable (see module docs).
    fn repair(&mut self, missing: &[u32], unused: &[usize]) {
        if missing.is_empty() {
            return;
        }
        assert!(
            unused.len() >= missing.len(),
            "peeling invariant: unused ({}) >= missing ({}) when N >= K",
            unused.len(),
            missing.len()
        );
        // Rebuild CSR with the replacements.
        let replacements: std::collections::HashMap<usize, u32> = unused
            .iter()
            .copied()
            .zip(missing.iter().copied())
            .collect();
        self.repairs = replacements.len();
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut adjacency = Vec::with_capacity(self.adjacency.len());
        offsets.push(0u32);
        for j in 0..self.n {
            if let Some(&orig) = replacements.get(&j) {
                adjacency.push(orig);
            } else {
                adjacency.extend_from_slice(self.neighbors(j));
            }
            offsets.push(adjacency.len() as u32);
        }
        self.offsets = offsets;
        self.adjacency = adjacency;
    }

    /// Full decodability check by index peeling (used in tests/debug).
    pub fn check_decodable(&self) -> bool {
        let mut probe = SymbolDecoder::new(self);
        for j in 0..self.n {
            if probe.receive(j) {
                return true;
            }
        }
        false
    }
}

/// Generate one candidate coding graph in CSR form.
///
/// Degrees come from the robust Soliton distribution; neighbours are
/// consumed from successive random permutations of the originals (the
/// uniform-coverage improvement). A coded block whose span crosses a
/// permutation boundary skips duplicates, so neighbour sets stay distinct.
fn generate_graph(
    k: usize,
    n: usize,
    soliton: &RobustSoliton,
    seq: &SeedSequence,
    attempt: u64,
) -> (Vec<u32>, Vec<u32>) {
    let mut deg_rng = seq.fork("lt-degree", attempt);
    let mut perm_rng = seq.fork("lt-perm", attempt);

    let mut perm: Vec<u32> = (0..k as u32).collect();
    perm.shuffle(&mut perm_rng);
    let mut cursor = 0usize;

    let mut offsets = Vec::with_capacity(n + 1);
    let mut adjacency: Vec<u32> = Vec::with_capacity(n * 6);
    offsets.push(0u32);

    let mut scratch: Vec<u32> = Vec::with_capacity(16);
    for _ in 0..n {
        let d = soliton.sample(&mut deg_rng);
        scratch.clear();
        while scratch.len() < d {
            if cursor == k {
                perm.shuffle(&mut perm_rng);
                cursor = 0;
            }
            let cand = perm[cursor];
            cursor += 1;
            // Duplicates only possible across a permutation boundary.
            if !scratch.contains(&cand) {
                scratch.push(cand);
            }
        }
        scratch.sort_unstable();
        adjacency.extend_from_slice(&scratch);
        offsets.push(adjacency.len() as u32);
    }
    (offsets, adjacency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use robustore_simkit::SeedSequence;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + 1) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn plan_is_deterministic() {
        let a = LtCode::plan(64, 256, LtParams::default(), 99).unwrap();
        let b = LtCode::plan(64, 256, LtParams::default(), 99).unwrap();
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.adjacency, b.adjacency);
        let c = LtCode::plan(64, 256, LtParams::default(), 100).unwrap();
        assert_ne!(a.adjacency, c.adjacency);
    }

    #[test]
    fn planned_graph_is_decodable() {
        for seed in 0..10 {
            let code = LtCode::plan(128, 192, LtParams::default(), seed).unwrap();
            assert!(code.check_decodable(), "seed {seed}");
        }
    }

    #[test]
    fn tight_n_equals_k_still_decodable_via_repair() {
        // N = K gives stock LT codes a near-zero decode probability; the
        // guarantee must come from repair.
        for seed in 0..5 {
            let code = LtCode::plan(64, 64, LtParams::default(), seed).unwrap();
            assert!(code.check_decodable(), "seed {seed}");
        }
    }

    #[test]
    fn roundtrip_all_blocks() {
        let code = LtCode::plan(32, 128, LtParams::default(), 7).unwrap();
        let data = make_data(32, 64);
        let coded = code.encode(&data).unwrap();
        let rx: Vec<_> = coded.into_iter().enumerate().collect();
        assert_eq!(code.decode(rx).unwrap(), data);
    }

    #[test]
    fn roundtrip_random_subset() {
        let code = LtCode::plan(64, 256, LtParams::default(), 11).unwrap();
        let data = make_data(64, 32);
        let mut coded: Vec<Option<Block>> =
            code.encode(&data).unwrap().into_iter().map(Some).collect();
        let mut order: Vec<usize> = (0..code.n()).collect();
        let mut rng = SeedSequence::new(5).fork("order", 0);
        order.shuffle(&mut rng);
        // Shuffled arrival, blocks moved (not cloned) into the decode call.
        let rx: Vec<_> = order
            .iter()
            .map(|&j| (j, coded[j].take().unwrap()))
            .collect();
        assert_eq!(code.decode(rx).unwrap(), data);
    }

    #[test]
    fn decode_uses_only_a_prefix() {
        // With 4x redundancy, decoding should complete well before all
        // blocks are consumed — this is the whole point of RobuSTore.
        let code = LtCode::plan(128, 512, LtParams::default(), 13).unwrap();
        let data = make_data(128, 16);
        let coded = code.encode(&data).unwrap();
        let mut order: Vec<usize> = (0..code.n()).collect();
        let mut rng = SeedSequence::new(6).fork("order", 0);
        order.shuffle(&mut rng);

        let mut coded: Vec<Option<Block>> = coded.into_iter().map(Some).collect();
        let mut dec = LtDecoder::new(&code, 16);
        let mut used = 0;
        for &j in &order {
            used += 1;
            if dec.receive(j, coded[j].take().unwrap()) {
                break;
            }
        }
        assert!(dec.is_complete());
        assert!(
            used < code.n(),
            "decode should not need every block (used {used} of {})",
            code.n()
        );
        // Reception overhead should be well under 100% for K=128.
        assert!(
            (used as f64) < 2.0 * code.k() as f64,
            "reception overhead too high: {used} blocks for K={}",
            code.k()
        );
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn encode_block_matches_bulk_encode() {
        let code = LtCode::plan(16, 48, LtParams::default(), 3).unwrap();
        let data = make_data(16, 24);
        let bulk = code.encode(&data).unwrap();
        let mut scratch = vec![0xAAu8; 24]; // dirty: encode_into must clear it
        for (j, block) in bulk.iter().enumerate() {
            assert_eq!(&code.encode_block(&data, j), block, "block {j}");
            code.encode_block_into(&data, j, &mut scratch);
            assert_eq!(&scratch, block, "encode_block_into block {j}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn encode_block_into_rejects_wrong_buffer() {
        let code = LtCode::plan(4, 8, LtParams::default(), 3).unwrap();
        let data = make_data(4, 16);
        code.encode_block_into(&data, 0, &mut [0u8; 15]);
    }

    #[test]
    fn uniform_coverage_property() {
        // The §5.2.3 improvement: original degrees are near-uniform. Check
        // max-min spread is small relative to the mean.
        let code = LtCode::plan(256, 1024, LtParams::default(), 21).unwrap();
        let mut deg = vec![0usize; 256];
        for j in 0..code.n() {
            for &i in code.neighbors(j) {
                deg[i as usize] += 1;
            }
        }
        let min = *deg.iter().min().unwrap();
        let max = *deg.iter().max().unwrap();
        let mean = code.mean_original_degree();
        assert!(min > 0, "every original must be covered");
        assert!(
            (max - min) as f64 <= mean.max(4.0),
            "coverage spread too wide: min {min}, max {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn neighbors_are_sorted_distinct() {
        let code = LtCode::plan(64, 256, LtParams::default(), 17).unwrap();
        for j in 0..code.n() {
            let nb = code.neighbors(j);
            assert!(!nb.is_empty());
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "block {j}: {nb:?}");
            assert!(nb.iter().all(|&i| (i as usize) < code.k()));
        }
    }

    #[test]
    fn blocks_touching_inverts_neighbors() {
        let code = LtCode::plan(16, 64, LtParams::default(), 23).unwrap();
        for orig in 0..code.k() {
            for j in code.blocks_touching(orig) {
                assert!(code.neighbors(j).contains(&(orig as u32)));
            }
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LtCode::plan(0, 10, LtParams::default(), 1).is_err());
        assert!(LtCode::plan(10, 5, LtParams::default(), 1).is_err());
    }

    #[test]
    fn decode_failed_with_too_few_blocks() {
        let code = LtCode::plan(32, 128, LtParams::default(), 31).unwrap();
        let data = make_data(32, 8);
        let coded = code.encode(&data).unwrap();
        // Only 10 blocks cannot cover 32 originals.
        let rx: Vec<_> = coded.into_iter().enumerate().take(10).collect();
        assert_eq!(code.decode(rx), Err(CodingError::DecodeFailed));
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let code = LtCode::plan(64, 256, LtParams::default(), 61).unwrap();
        let data = make_data(64, 48);
        let serial = code.encode(&data).unwrap();
        for threads in [1usize, 2, 3, 8, 1000] {
            assert_eq!(
                code.encode_parallel(&data, threads).unwrap(),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn stock_plan_lacks_the_guarantees() {
        // Stock graphs at N = K are almost never decodable, and original
        // coverage is uneven — the reasons §5.2.3 exists. Improved plans
        // of the same shape always decode.
        let mut stock_failures = 0;
        for seed in 0..20 {
            let stock = LtCode::plan_stock(64, 64, LtParams::default(), seed).unwrap();
            if !stock.check_decodable() {
                stock_failures += 1;
            }
            let improved = LtCode::plan(64, 64, LtParams::default(), seed).unwrap();
            assert!(improved.check_decodable(), "seed {seed}");
        }
        assert!(
            stock_failures > 10,
            "stock LT at N=K should usually fail ({stock_failures}/20 failed)"
        );
    }

    #[test]
    fn stock_plan_decodes_with_ample_redundancy() {
        // With 3x blocks, stock graphs usually decode — the communication
        // setting they were designed for.
        let mut ok = 0;
        for seed in 0..40 {
            let stock = LtCode::plan_stock(64, 192, LtParams::default(), seed).unwrap();
            if stock.check_decodable() {
                ok += 1;
            }
        }
        assert!(
            ok >= 30,
            "stock LT with 3x blocks should usually decode ({ok}/40)"
        );
    }

    #[test]
    fn update_cost_is_fraction_of_total() {
        // §4.3.4: updating one original touches ~mean_original_degree coded
        // blocks, a small fraction of N.
        let code = LtCode::plan(256, 1024, LtParams::default(), 41).unwrap();
        let touched = code.blocks_touching(0).len();
        assert!(touched >= 1);
        assert!(
            (touched as f64) < code.n() as f64 * 0.1,
            "update to one original should touch <10% of coded blocks, touched {touched}"
        );
    }
}
