//! Greedy-XOR LT decoder — the ablation baseline for lazy decoding.
//!
//! The original LT decoding "does XOR operations greedily whenever a new
//! coded block is received" (§5.2.3): every arriving coded block is
//! immediately reduced against all already-decoded originals it touches,
//! and every newly decoded original is immediately substituted into all
//! held coded blocks. Many of those XORs produce intermediate values that
//! never contribute to a decoded block — the waste the lazy decoder
//! ([`super::LtDecoder`]) eliminates. This implementation exists to
//! measure that difference (`xor_ops()` on both).

use super::LtCode;
use crate::{xor_into, Block};

/// Greedy (eager-substitution) LT decoder.
pub struct GreedyDecoder<'a> {
    code: &'a LtCode,
    block_len: usize,
    decoded: Vec<Option<Block>>,
    /// Received coded blocks, progressively reduced: data plus the list
    /// of still-unknown originals.
    held: Vec<Option<(Block, Vec<u32>)>>,
    /// incidence[i] = held coded blocks still containing original i.
    incidence: Vec<Vec<u32>>,
    /// Arrival dedup (held[j] alone cannot serve: resolved blocks leave it).
    seen: Vec<bool>,
    /// Buffers of arrivals that contributed nothing, kept for pooling.
    spares: Vec<Block>,
    decoded_count: usize,
    received_count: usize,
    xor_ops: usize,
}

impl<'a> GreedyDecoder<'a> {
    /// A greedy decoder for `code` over `block_len`-byte blocks.
    pub fn new(code: &'a LtCode, block_len: usize) -> Self {
        GreedyDecoder {
            code,
            block_len,
            decoded: vec![None; code.k()],
            held: vec![None; code.n()],
            incidence: vec![Vec::new(); code.k()],
            seen: vec![false; code.n()],
            spares: Vec::new(),
            decoded_count: 0,
            received_count: 0,
            xor_ops: 0,
        }
    }

    /// Feed coded block `j`, taking ownership of its buffer. Returns
    /// `true` once all K originals decode.
    pub fn receive(&mut self, j: usize, mut data: Block) -> bool {
        assert!(j < self.code.n(), "coded index out of range");
        assert_eq!(data.len(), self.block_len, "block length mismatch");
        if self.is_complete() || self.seen[j] {
            self.spares.push(data);
            return self.is_complete();
        }
        self.seen[j] = true;
        self.received_count += 1;
        // Greedy step 1: immediately reduce by every known original.
        let mut unknown: Vec<u32> = Vec::new();
        for &i in self.code.neighbors(j) {
            match &self.decoded[i as usize] {
                Some(known) => {
                    xor_into(&mut data, known);
                    self.xor_ops += 1;
                }
                None => unknown.push(i),
            }
        }
        if unknown.is_empty() {
            self.spares.push(data);
            return self.is_complete(); // fully redundant arrival
        }
        for &i in &unknown {
            self.incidence[i as usize].push(j as u32);
        }
        self.held[j] = Some((data, unknown));
        self.propagate(j);
        self.is_complete()
    }

    /// Greedy step 2: whenever a held block reaches one unknown, decode it
    /// and substitute eagerly into every other held block.
    fn propagate(&mut self, start: usize) {
        let mut worklist = vec![start as u32];
        while let Some(j) = worklist.pop() {
            let j = j as usize;
            let ready = matches!(&self.held[j], Some((_, unknown)) if unknown.len() == 1);
            if !ready {
                continue;
            }
            let (data, unknown) = self.held[j].take().expect("checked above");
            let target = unknown[0] as usize;
            if self.decoded[target].is_some() {
                continue;
            }
            self.decoded[target] = Some(data);
            self.decoded_count += 1;
            // Eager substitution into every holder of `target`.
            let holders = std::mem::take(&mut self.incidence[target]);
            for h in holders {
                let h = h as usize;
                if let Some((hdata, hunknown)) = &mut self.held[h] {
                    if let Some(pos) = hunknown.iter().position(|&u| u as usize == target) {
                        hunknown.swap_remove(pos);
                        let known = self.decoded[target].as_ref().expect("just set");
                        xor_into(hdata, known);
                        self.xor_ops += 1;
                        if hunknown.len() == 1 {
                            worklist.push(h as u32);
                        }
                    }
                }
            }
        }
    }

    /// True when every original is decoded.
    pub fn is_complete(&self) -> bool {
        self.decoded_count == self.code.k()
    }

    /// Distinct coded blocks received.
    pub fn received(&self) -> usize {
        self.received_count
    }

    /// Block XOR operations performed — the cost the lazy decoder beats.
    pub fn xor_ops(&self) -> usize {
        self.xor_ops
    }

    /// Take buffers of arrivals that contributed nothing (see
    /// [`super::LtDecoder::drain_spares`]) for pool recycling.
    pub fn drain_spares(&mut self) -> Vec<Block> {
        let mut out = std::mem::take(&mut self.spares);
        if self.is_complete() {
            out.extend(
                self.held
                    .iter_mut()
                    .filter_map(|slot| slot.take().map(|(b, _)| b)),
            );
        }
        out
    }

    /// Extract the decoded data; `None` if incomplete.
    pub fn into_data(self) -> Option<Vec<Block>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            self.decoded
                .into_iter()
                .map(|b| b.expect("complete decode"))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lt::{LtDecoder, LtParams};
    use rand::seq::SliceRandom;
    use robustore_simkit::SeedSequence;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 41 + j * 13 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn greedy_decodes_correctly() {
        let code = LtCode::plan(48, 192, LtParams::default(), 91).unwrap();
        let data = make_data(48, 32);
        let mut coded: Vec<Option<Block>> =
            code.encode(&data).unwrap().into_iter().map(Some).collect();
        let mut order: Vec<usize> = (0..code.n()).collect();
        let mut rng = SeedSequence::new(12).fork("order", 0);
        order.shuffle(&mut rng);
        let mut dec = GreedyDecoder::new(&code, 32);
        for &j in &order {
            if dec.receive(j, coded[j].take().unwrap()) {
                break;
            }
        }
        assert!(dec.is_complete());
        assert_eq!(dec.into_data().unwrap(), data);
    }

    #[test]
    fn greedy_and_lazy_complete_at_the_same_arrival() {
        // Both decoders implement the same peeling fixpoint; they must
        // finish on the same block, differing only in XOR count.
        let code = LtCode::plan(64, 256, LtParams::default(), 92).unwrap();
        let data = make_data(64, 16);
        let coded = code.encode(&data).unwrap();
        let mut order: Vec<usize> = (0..code.n()).collect();
        let mut rng = SeedSequence::new(13).fork("order", 0);
        order.shuffle(&mut rng);

        let mut greedy = GreedyDecoder::new(&code, 16);
        let mut lazy = LtDecoder::new(&code, 16);
        for &j in &order {
            let g = greedy.receive(j, coded[j].clone());
            let l = lazy.receive(j, coded[j].clone());
            assert_eq!(g, l, "divergence at {j}");
            if g {
                break;
            }
        }
        assert_eq!(greedy.received(), lazy.received());
        assert_eq!(greedy.into_data().unwrap(), lazy.into_data().unwrap());
    }

    #[test]
    fn lazy_never_does_more_xors_than_greedy() {
        // §5.2.3 claim 3: lazy XOR "eliminated any operations to generate
        // intermediate data that would not help".
        let mut lazy_total = 0usize;
        let mut greedy_total = 0usize;
        for seed in 0..10u64 {
            let code = LtCode::plan(96, 384, LtParams::default(), 93 + seed).unwrap();
            let data = make_data(96, 8);
            let coded = code.encode(&data).unwrap();
            let mut order: Vec<usize> = (0..code.n()).collect();
            let mut rng = SeedSequence::new(seed).fork("order", 0);
            order.shuffle(&mut rng);
            let mut greedy = GreedyDecoder::new(&code, 8);
            let mut lazy = LtDecoder::new(&code, 8);
            for &j in &order {
                let done = greedy.receive(j, coded[j].clone());
                lazy.receive(j, coded[j].clone());
                if done {
                    break;
                }
            }
            assert!(
                lazy.xor_ops() <= greedy.xor_ops(),
                "seed {seed}: lazy {} vs greedy {}",
                lazy.xor_ops(),
                greedy.xor_ops()
            );
            lazy_total += lazy.xor_ops();
            greedy_total += greedy.xor_ops();
        }
        assert!(
            lazy_total < greedy_total,
            "lazy should save XORs overall: {lazy_total} vs {greedy_total}"
        );
    }

    #[test]
    fn duplicates_ignored() {
        let code = LtCode::plan(16, 64, LtParams::default(), 94).unwrap();
        let data = make_data(16, 8);
        let coded = code.encode(&data).unwrap();
        let mut dec = GreedyDecoder::new(&code, 8);
        dec.receive(0, coded[0].clone());
        dec.receive(0, coded[0].clone());
        assert_eq!(dec.received(), 1);
        // The duplicate's buffer is recoverable, not leaked.
        assert_eq!(dec.drain_spares().len(), 1);
    }
}
