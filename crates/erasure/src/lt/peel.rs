//! Index-only peeling decoder.
//!
//! Runs the LT belief-propagation (peeling) process on block *indices*
//! without touching data — the only LT path that deliberately bypasses the
//! data kernels in [`crate::kernels`], because it moves no bytes at all.
//! Three users:
//!
//! * `LtCode::plan` — the §5.2.3 decodability check before any data XOR;
//! * the simulator — a virtual client feeds arriving block ids in and stops
//!   the access the moment decoding would complete, yielding the per-trial
//!   reception overhead exactly as the paper measures it (§6.2.5,
//!   "Erasure Coding");
//! * Figure 5-2 — `edges_used` counts the XORs a real decode would perform.

use super::LtCode;

/// Peeling state over coded-block indices.
pub struct SymbolDecoder<'a> {
    code: &'a LtCode,
    /// Whether each original is decoded.
    original_decoded: Vec<bool>,
    /// For each *received, unresolved* coded block: number of undecoded
    /// neighbours remaining. `u32::MAX` marks not-yet-received.
    remaining: Vec<u32>,
    /// Whether a received coded block was consumed to decode an original.
    used: Vec<bool>,
    /// incidence[i] = received coded blocks that contain original i and are
    /// still unresolved.
    incidence: Vec<Vec<u32>>,
    decoded_count: usize,
    received_count: usize,
    edges_used: usize,
}

impl<'a> SymbolDecoder<'a> {
    /// Fresh decoder state for `code`.
    pub fn new(code: &'a LtCode) -> Self {
        SymbolDecoder {
            code,
            original_decoded: vec![false; code.k()],
            remaining: vec![u32::MAX; code.n()],
            used: vec![false; code.n()],
            incidence: vec![Vec::new(); code.k()],
            decoded_count: 0,
            received_count: 0,
            edges_used: 0,
        }
    }

    /// Feed the arrival of coded block `j`. Returns `true` once all K
    /// originals are decodable. Duplicate arrivals are ignored.
    pub fn receive(&mut self, j: usize) -> bool {
        assert!(j < self.code.n(), "coded index out of range");
        if self.is_complete() {
            return true;
        }
        if self.remaining[j] != u32::MAX {
            return false; // duplicate
        }
        self.received_count += 1;
        let mut undecoded = 0u32;
        for &i in self.code.neighbors(j) {
            if !self.original_decoded[i as usize] {
                undecoded += 1;
                self.incidence[i as usize].push(j as u32);
            }
        }
        self.remaining[j] = undecoded;
        if undecoded == 0 {
            // Everything it covers is already known; it contributes nothing.
            return self.is_complete();
        }
        if undecoded == 1 {
            self.resolve_from(j);
        }
        self.is_complete()
    }

    /// Ripple: coded block `j` has exactly one undecoded neighbour; decode
    /// it, then cascade.
    fn resolve_from(&mut self, start: usize) {
        let mut worklist = vec![start as u32];
        while let Some(j) = worklist.pop() {
            let j = j as usize;
            if self.remaining[j] != 1 {
                continue; // already cascaded past it
            }
            // Find its single undecoded neighbour.
            let target = self
                .code
                .neighbors(j)
                .iter()
                .copied()
                .find(|&i| !self.original_decoded[i as usize])
                .expect("remaining == 1 implies one undecoded neighbour");
            // A real decode XORs the coded block with its degree-1 decoded
            // neighbours: degree edges touched in total.
            self.edges_used += self.code.degree(j);
            self.used[j] = true;
            self.remaining[j] = 0;
            self.original_decoded[target as usize] = true;
            self.decoded_count += 1;
            // Newly decoded original reduces the remaining count of every
            // unresolved coded block containing it.
            let incident = std::mem::take(&mut self.incidence[target as usize]);
            for &other in &incident {
                let o = other as usize;
                if self.remaining[o] != u32::MAX && self.remaining[o] > 0 {
                    self.remaining[o] -= 1;
                    if self.remaining[o] == 1 {
                        worklist.push(other);
                    }
                }
            }
        }
    }

    /// True when every original block is decodable from what arrived.
    pub fn is_complete(&self) -> bool {
        self.decoded_count == self.code.k()
    }

    /// How many distinct coded blocks have arrived.
    pub fn received(&self) -> usize {
        self.received_count
    }

    /// How many originals are decoded so far.
    pub fn decoded(&self) -> usize {
        self.decoded_count
    }

    /// Whether original `i` is decoded.
    pub fn is_original_decoded(&self, i: usize) -> bool {
        self.original_decoded[i]
    }

    /// Whether received coded block `j` was consumed by the peel.
    pub fn was_used(&self, j: usize) -> bool {
        self.used[j]
    }

    /// Total graph edges touched by the (lazy) decode so far — the XOR-cost
    /// proxy plotted in Figure 5-2.
    pub fn edges_used(&self) -> usize {
        self.edges_used
    }

    /// Reception overhead so far: received/K − 1 (meaningful on completion).
    pub fn reception_overhead(&self) -> f64 {
        self.received_count as f64 / self.code.k() as f64 - 1.0
    }
}

/// Feed blocks in `order` until decoding completes; returns
/// `(blocks_needed, edges_used)`, or `None` if the order never completes.
pub fn blocks_needed(
    code: &LtCode,
    order: impl IntoIterator<Item = usize>,
) -> Option<(usize, usize)> {
    let mut dec = SymbolDecoder::new(code);
    for j in order {
        if dec.receive(j) {
            return Some((dec.received(), dec.edges_used()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lt::LtParams;
    use rand::seq::SliceRandom;
    use robustore_simkit::SeedSequence;

    fn code(k: usize, n: usize, seed: u64) -> LtCode {
        LtCode::plan(k, n, LtParams::default(), seed).unwrap()
    }

    #[test]
    fn completes_in_graph_order() {
        let c = code(64, 256, 1);
        let got = blocks_needed(&c, 0..c.n());
        assert!(got.is_some());
        let (needed, edges) = got.unwrap();
        assert!(needed >= c.k());
        assert!(edges >= c.k()); // at least one edge per original
    }

    #[test]
    fn completes_in_random_order_with_sane_overhead() {
        let c = code(256, 1024, 2);
        let mut rng = SeedSequence::new(77).fork("order", 0);
        let mut overheads = Vec::new();
        for t in 0..20 {
            let mut order: Vec<usize> = (0..c.n()).collect();
            order.shuffle(&mut rng);
            let (needed, _) = blocks_needed(&c, order).unwrap_or_else(|| panic!("trial {t}"));
            overheads.push(needed as f64 / c.k() as f64 - 1.0);
        }
        let mean: f64 = overheads.iter().sum::<f64>() / overheads.len() as f64;
        // Paper: ≈0.5 at K=1024 with C=1, δ=0.5; smaller K runs higher but
        // must stay well under 1.5.
        assert!(
            (0.05..1.2).contains(&mean),
            "mean reception overhead {mean}"
        );
    }

    #[test]
    fn duplicates_do_not_count() {
        let c = code(16, 64, 3);
        let mut dec = SymbolDecoder::new(&c);
        dec.receive(0);
        dec.receive(0);
        dec.receive(0);
        assert_eq!(dec.received(), 1);
    }

    #[test]
    fn receive_after_complete_is_stable() {
        let c = code(16, 64, 4);
        let mut dec = SymbolDecoder::new(&c);
        let mut done_at = None;
        for j in 0..c.n() {
            if dec.receive(j) {
                done_at = Some(dec.received());
                break;
            }
        }
        let done_at = done_at.expect("full set must decode");
        assert!(dec.receive(0));
        assert_eq!(dec.received(), done_at, "post-completion arrivals ignored");
    }

    #[test]
    fn progress_counters_monotone() {
        let c = code(32, 128, 5);
        let mut dec = SymbolDecoder::new(&c);
        let mut last_decoded = 0;
        for j in 0..c.n() {
            dec.receive(j);
            assert!(dec.decoded() >= last_decoded);
            last_decoded = dec.decoded();
            if dec.is_complete() {
                break;
            }
        }
        assert!(dec.is_complete());
        assert_eq!(dec.decoded(), c.k());
    }

    #[test]
    fn insufficient_blocks_never_complete() {
        let c = code(64, 256, 6);
        // Fewer than K blocks can never decode K originals.
        assert!(blocks_needed(&c, 0..c.k() - 1).is_none());
    }
}
