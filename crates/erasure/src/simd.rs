//! SIMD GF(256) kernels: the split-nibble formulation on real shuffle
//! hardware (`simd` feature).
//!
//! The table kernels in [`crate::kernels`] index an expanded 256-entry
//! product table one byte (or one byte *pair*) at a time — every product
//! is a load, and the load ports are the ceiling. The split-nibble
//! identity `c·b = T_lo[b & 15] ^ T_hi[b >> 4]` has a second reading: the
//! two 16-entry tables fit in one vector register each, and a 16-lane
//! byte shuffle (`PSHUFB` on x86, `TBL` on aarch64) performs *sixteen*
//! table lookups in one instruction with no memory traffic at all. That
//! is the ISA-L/Plank formulation, and it turns the multiply-accumulate
//! from a load-bound loop into a handful of register-only ops per 16/32
//! bytes.
//!
//! Five implementations, chosen once at startup by CPU probing:
//!
//! * **x86_64 GFNI** — `GF2P8MULB` multiplies 32 byte pairs directly in
//!   GF(2⁸) over the AES polynomial 0x11B — which is exactly this
//!   field's polynomial — so the whole split-nibble apparatus collapses
//!   to one instruction per 32 products: no tables, no shifts, no masks.
//! * **x86_64 AVX-512VBMI** — `VPERMB` is a *full* 64-lane byte permute
//!   (unlike `VPSHUFB` it crosses 128-bit lanes), so the two 16-entry
//!   nibble tables broadcast into 512-bit registers serve 64 lookups per
//!   instruction.
//! * **x86_64 AVX2** — 32 lanes per op (`_mm256_shuffle_epi8` shuffles
//!   within each 128-bit half, which is exactly right: the same 16-entry
//!   table is broadcast to both halves), main loop unrolled to 64 bytes.
//! * **x86_64 SSSE3** — the 16-lane `_mm_shuffle_epi8` version for CPUs
//!   without AVX2 (SSSE3 is ~2006-era and effectively universal).
//! * **aarch64 NEON** — `vqtbl1q_u8` against the same two tables.
//!
//! The probe prefers GFNI over AVX-512VBMI: both exist on the same
//! cores (Ice Lake on), and one true multiply per vector beats two
//! permutes plus shift/mask — without the 512-bit license throttling.
//! Every tier the host supports (not just the preferred one) stays
//! reachable through the `*_at` entry points so the differential suite
//! can pin each tier against the scalar reference.
//!
//! Every function here is byte-identical to the scalar reference (the
//! differential suite in `tests/kernel_differential.rs` runs all of its
//! randomized cases against this module when the feature and CPU allow);
//! tails shorter than one vector fall back to the expanded-table path so
//! odd lengths and unaligned slices cost nothing in correctness. All
//! loads/stores use the unaligned forms — callers hand us arbitrary
//! sub-slices.
//!
//! Runtime selection: [`available`] reports whether the probe found a
//! usable instruction set; [`crate::kernels::set_kernel`] refuses to
//! activate [`crate::kernels::Kernel::Simd`] without it, so a binary
//! built with `--features simd` still runs (on the table kernels) on a
//! host without the instructions.

#![allow(unsafe_code)]

use crate::kernels::NibbleTables;

/// The instruction tier the CPU probe selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// No usable SIMD tier (or the crate was built without `simd`).
    None,
    /// x86_64 SSSE3: 16-lane `PSHUFB`.
    Ssse3,
    /// x86_64 AVX2: 32-lane `VPSHUFB`.
    Avx2,
    /// x86_64 AVX-512VBMI: 64-lane `VPERMB` nibble lookups.
    Avx512Vbmi,
    /// x86_64 GFNI: 32-lane `GF2P8MULB` true-field multiply.
    Gfni,
    /// aarch64 NEON: 16-lane `TBL`.
    Neon,
}

/// Probe the CPU once and cache the best usable tier.
pub fn level() -> SimdLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(probe)
}

/// Whether a SIMD tier is usable on this host.
pub fn available() -> bool {
    level() != SimdLevel::None
}

#[cfg(target_arch = "x86_64")]
fn probe() -> SimdLevel {
    for tier in [
        SimdLevel::Gfni,
        SimdLevel::Avx512Vbmi,
        SimdLevel::Avx2,
        SimdLevel::Ssse3,
    ] {
        if tier_supported(tier) {
            return tier;
        }
    }
    SimdLevel::None
}

#[cfg(target_arch = "aarch64")]
fn probe() -> SimdLevel {
    if std::arch::is_aarch64_feature_detected!("neon") {
        SimdLevel::Neon
    } else {
        SimdLevel::None
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn probe() -> SimdLevel {
    SimdLevel::None
}

/// Whether this host can execute `tier`, independent of which tier the
/// probe *prefers*. The `*_at` entry points assert this, so differential
/// tests can exercise every supported tier, not just [`level`]'s pick.
pub fn tier_supported(tier: SimdLevel) -> bool {
    match tier {
        SimdLevel::None => true,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512Vbmi => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512vbmi")
        }
        // The GFNI kernels use the VEX-encoded 256-bit forms, which need
        // AVX2 alongside the GFNI bit (pre-AVX hosts expose only the
        // legacy-SSE encoding).
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Gfni => {
            std::arch::is_x86_feature_detected!("gfni")
                && std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Dispatching entry points (same signatures as the kernels-module pairs)
// ---------------------------------------------------------------------------

/// SIMD XOR of `src` into `dst`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn xor_into_simd(dst: &mut [u8], src: &[u8]) {
    xor_into_simd_at(level(), dst, src)
}

/// [`xor_into_simd`] pinned to a specific tier (differential testing).
///
/// # Panics
/// Panics if the slices differ in length or the host cannot execute
/// `tier` (see [`tier_supported`]).
pub fn xor_into_simd_at(tier: SimdLevel, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor of blocks with unequal lengths");
    assert!(
        tier_supported(tier),
        "tier {tier:?} unsupported on this CPU"
    );
    match tier {
        // GFNI's probe gate includes AVX2, and XOR needs no field math.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 | SimdLevel::Gfni => unsafe { x86::xor_avx2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512Vbmi => unsafe { x86::xor_avx512(dst, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => unsafe { x86::xor_sse2(dst, src) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::xor_neon(dst, src) },
        _ => crate::kernels::xor_into_wide(dst, src),
    }
}

/// SIMD `acc ^= coef · src` over GF(2⁸).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn gf_axpy_simd(acc: &mut [u8], coef: u8, src: &[u8]) {
    gf_axpy_simd_at(level(), acc, coef, src)
}

/// [`gf_axpy_simd`] pinned to a specific tier (differential testing).
///
/// # Panics
/// Panics if the slices differ in length or the host cannot execute
/// `tier` (see [`tier_supported`]).
pub fn gf_axpy_simd_at(tier: SimdLevel, acc: &mut [u8], coef: u8, src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "axpy over blocks of unequal lengths");
    assert!(
        tier_supported(tier),
        "tier {tier:?} unsupported on this CPU"
    );
    if coef == 0 {
        return;
    }
    if coef == 1 {
        xor_into_simd_at(tier, acc, src);
        return;
    }
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Gfni => unsafe { x86::axpy_gfni(acc, coef, src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512Vbmi => unsafe { x86::axpy_vbmi(acc, &NibbleTables::new(coef), src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::axpy_avx2(acc, &NibbleTables::new(coef), src) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => unsafe { x86::axpy_ssse3(acc, &NibbleTables::new(coef), src) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::axpy_neon(acc, &NibbleTables::new(coef), src) },
        _ => crate::kernels::gf_axpy_vector(acc, coef, src),
    }
}

/// SIMD in-place scale of `block` by field scalar `x`.
pub fn gf_scale_simd(block: &mut [u8], x: u8) {
    gf_scale_simd_at(level(), block, x)
}

/// [`gf_scale_simd`] pinned to a specific tier (differential testing).
///
/// # Panics
/// Panics if the host cannot execute `tier` (see [`tier_supported`]).
pub fn gf_scale_simd_at(tier: SimdLevel, block: &mut [u8], x: u8) {
    assert!(
        tier_supported(tier),
        "tier {tier:?} unsupported on this CPU"
    );
    if x == 1 {
        return;
    }
    if x == 0 {
        block.fill(0);
        return;
    }
    match tier {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Gfni => unsafe { x86::scale_gfni(block, x) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512Vbmi => unsafe { x86::scale_vbmi(block, &NibbleTables::new(x)) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { x86::scale_avx2(block, &NibbleTables::new(x)) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Ssse3 => unsafe { x86::scale_ssse3(block, &NibbleTables::new(x)) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::scale_neon(block, &NibbleTables::new(x)) },
        _ => crate::kernels::gf_scale_vector(block, x),
    }
}

/// SIMD fused multiply-accumulate of several sources: `acc ^= Σ coefᵢ·srcᵢ`.
/// Sources fold in pairs per pass, so the destination round-trips memory
/// half as often as per-source application — and each pass keeps two
/// independent shuffle chains in flight.
///
/// # Panics
/// Panics if any source's length differs from `acc`'s.
pub fn gf_axpy_multi_simd(acc: &mut [u8], srcs: &[(u8, &[u8])]) {
    gf_axpy_multi_simd_at(level(), acc, srcs)
}

/// [`gf_axpy_multi_simd`] pinned to a specific tier (differential testing).
///
/// # Panics
/// Panics if any source's length differs from `acc`'s or the host cannot
/// execute `tier` (see [`tier_supported`]).
pub fn gf_axpy_multi_simd_at(tier: SimdLevel, acc: &mut [u8], srcs: &[(u8, &[u8])]) {
    for &(_, src) in srcs {
        assert_eq!(acc.len(), src.len(), "axpy over blocks of unequal lengths");
    }
    assert!(
        tier_supported(tier),
        "tier {tier:?} unsupported on this CPU"
    );
    let live: Vec<(u8, &[u8])> = srcs.iter().filter(|&&(c, _)| c != 0).copied().collect();
    let mut pairs = live.chunks_exact(2);
    for pair in &mut pairs {
        let (c0, s0) = pair[0];
        let (c1, s1) = pair[1];
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Gfni => unsafe { x86::axpy2_gfni(acc, c0, s0, c1, s1) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512Vbmi => unsafe {
                x86::axpy2_vbmi(acc, &NibbleTables::new(c0), s0, &NibbleTables::new(c1), s1)
            },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe {
                x86::axpy2_avx2(acc, &NibbleTables::new(c0), s0, &NibbleTables::new(c1), s1)
            },
            _ => {
                gf_axpy_simd_at(tier, acc, c0, s0);
                gf_axpy_simd_at(tier, acc, c1, s1);
            }
        }
    }
    for &(coef, src) in pairs.remainder() {
        gf_axpy_simd_at(tier, acc, coef, src);
    }
}

/// Per-byte tail fallback shared by all tiers: finish `acc[i] ^= c·src[i]`
/// through the nibble tables.
#[inline]
fn axpy_tail(acc: &mut [u8], nt: &NibbleTables, src: &[u8]) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a ^= nt.mul(s);
    }
}

#[inline]
fn scale_tail(block: &mut [u8], nt: &NibbleTables) {
    for b in block.iter_mut() {
        *b = nt.mul(*b);
    }
}

// ---------------------------------------------------------------------------
// x86_64: SSSE3 PSHUFB and AVX2 VPSHUFB
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{axpy_tail, scale_tail};
    use crate::kernels::NibbleTables;
    use std::arch::x86_64::*;

    /// One 16-lane product: `T_lo[v & 15] ^ T_hi[v >> 4]` via two PSHUFBs.
    /// Indices are masked to 0..15, so the PSHUFB high-bit-clears-lane
    /// rule never triggers.
    #[inline(always)]
    unsafe fn mul16(v: __m128i, lo_tbl: __m128i, hi_tbl: __m128i, mask: __m128i) -> __m128i {
        let lo = _mm_and_si128(v, mask);
        // Byte-wise >>4 does not exist; shift 64-bit lanes and re-mask.
        let hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi))
    }

    /// One 32-lane product. VPSHUFB shuffles within each 128-bit half, so
    /// broadcasting the 16-entry table to both halves gives the correct
    /// per-byte lookup across all 32 lanes.
    #[inline(always)]
    unsafe fn mul32(v: __m256i, lo_tbl: __m256i, hi_tbl: __m256i, mask: __m256i) -> __m256i {
        let lo = _mm256_and_si256(v, mask);
        let hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
        _mm256_xor_si256(
            _mm256_shuffle_epi8(lo_tbl, lo),
            _mm256_shuffle_epi8(hi_tbl, hi),
        )
    }

    #[target_feature(enable = "ssse3")]
    pub unsafe fn axpy_ssse3(acc: &mut [u8], nt: &NibbleTables, src: &[u8]) {
        let lo_tbl = _mm_loadu_si128(nt.lo.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(nt.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = acc.len() / 16 * 16;
        let (a, s) = (acc.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_si128(s.add(i) as *const __m128i);
            let d = _mm_loadu_si128(a.add(i) as *const __m128i);
            let p = mul16(v, lo_tbl, hi_tbl, mask);
            _mm_storeu_si128(a.add(i) as *mut __m128i, _mm_xor_si128(d, p));
            i += 16;
        }
        axpy_tail(&mut acc[n..], nt, &src[n..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(acc: &mut [u8], nt: &NibbleTables, src: &[u8]) {
        let lo128 = _mm_loadu_si128(nt.lo.as_ptr() as *const __m128i);
        let hi128 = _mm_loadu_si128(nt.hi.as_ptr() as *const __m128i);
        let lo_tbl = _mm256_broadcastsi128_si256(lo128);
        let hi_tbl = _mm256_broadcastsi128_si256(hi128);
        let mask = _mm256_set1_epi8(0x0F);
        let (a, s) = (acc.as_mut_ptr(), src.as_ptr());
        // 64-byte main loop: two independent shuffle chains in flight.
        let n64 = acc.len() / 64 * 64;
        let mut i = 0;
        while i < n64 {
            let v0 = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let v1 = _mm256_loadu_si256(s.add(i + 32) as *const __m256i);
            let d0 = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let d1 = _mm256_loadu_si256(a.add(i + 32) as *const __m256i);
            let p0 = mul32(v0, lo_tbl, hi_tbl, mask);
            let p1 = mul32(v1, lo_tbl, hi_tbl, mask);
            _mm256_storeu_si256(a.add(i) as *mut __m256i, _mm256_xor_si256(d0, p0));
            _mm256_storeu_si256(a.add(i + 32) as *mut __m256i, _mm256_xor_si256(d1, p1));
            i += 64;
        }
        let n32 = acc.len() / 32 * 32;
        while i < n32 {
            let v = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let d = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let p = mul32(v, lo_tbl, hi_tbl, mask);
            _mm256_storeu_si256(a.add(i) as *mut __m256i, _mm256_xor_si256(d, p));
            i += 32;
        }
        axpy_tail(&mut acc[n32..], nt, &src[n32..]);
    }

    /// Two-source fused AVX2 axpy: one destination round trip per pair.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy2_avx2(
        acc: &mut [u8],
        nt0: &NibbleTables,
        src0: &[u8],
        nt1: &NibbleTables,
        src1: &[u8],
    ) {
        let lo0 = _mm256_broadcastsi128_si256(_mm_loadu_si128(nt0.lo.as_ptr() as *const __m128i));
        let hi0 = _mm256_broadcastsi128_si256(_mm_loadu_si128(nt0.hi.as_ptr() as *const __m128i));
        let lo1 = _mm256_broadcastsi128_si256(_mm_loadu_si128(nt1.lo.as_ptr() as *const __m128i));
        let hi1 = _mm256_broadcastsi128_si256(_mm_loadu_si128(nt1.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n32 = acc.len() / 32 * 32;
        let (a, s0, s1) = (acc.as_mut_ptr(), src0.as_ptr(), src1.as_ptr());
        let mut i = 0;
        while i < n32 {
            let v0 = _mm256_loadu_si256(s0.add(i) as *const __m256i);
            let v1 = _mm256_loadu_si256(s1.add(i) as *const __m256i);
            let d = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let p0 = mul32(v0, lo0, hi0, mask);
            let p1 = mul32(v1, lo1, hi1, mask);
            let x = _mm256_xor_si256(d, _mm256_xor_si256(p0, p1));
            _mm256_storeu_si256(a.add(i) as *mut __m256i, x);
            i += 32;
        }
        axpy_tail(&mut acc[n32..], nt0, &src0[n32..]);
        axpy_tail(&mut acc[n32..], nt1, &src1[n32..]);
    }

    #[target_feature(enable = "ssse3")]
    pub unsafe fn scale_ssse3(block: &mut [u8], nt: &NibbleTables) {
        let lo_tbl = _mm_loadu_si128(nt.lo.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(nt.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = block.len() / 16 * 16;
        let b = block.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_si128(b.add(i) as *const __m128i);
            _mm_storeu_si128(b.add(i) as *mut __m128i, mul16(v, lo_tbl, hi_tbl, mask));
            i += 16;
        }
        scale_tail(&mut block[n..], nt);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_avx2(block: &mut [u8], nt: &NibbleTables) {
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(nt.lo.as_ptr() as *const __m128i));
        let hi_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(nt.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = block.len() / 32 * 32;
        let b = block.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v = _mm256_loadu_si256(b.add(i) as *const __m256i);
            _mm256_storeu_si256(b.add(i) as *mut __m256i, mul32(v, lo_tbl, hi_tbl, mask));
            i += 32;
        }
        scale_tail(&mut block[n..], nt);
    }

    /// AVX2 XOR, 64 bytes per iteration.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_avx2(dst: &mut [u8], src: &[u8]) {
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let n64 = dst.len() / 64 * 64;
        let mut i = 0;
        while i < n64 {
            let a0 = _mm256_loadu_si256(d.add(i) as *const __m256i);
            let b0 = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let a1 = _mm256_loadu_si256(d.add(i + 32) as *const __m256i);
            let b1 = _mm256_loadu_si256(s.add(i + 32) as *const __m256i);
            _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_xor_si256(a0, b0));
            _mm256_storeu_si256(d.add(i + 32) as *mut __m256i, _mm256_xor_si256(a1, b1));
            i += 64;
        }
        for (db, sb) in dst[n64..].iter_mut().zip(&src[n64..]) {
            *db ^= *sb;
        }
    }

    // -- GFNI: true field multiply ---------------------------------------
    //
    // `GF2P8MULB` multiplies byte lanes in GF(2⁸) over x⁸+x⁴+x³+x+1
    // (0x11B) — exactly this crate's polynomial — so the coefficient
    // broadcasts into one register and every 32 products cost one
    // instruction: no nibble tables, no shifts, no masks.

    #[target_feature(enable = "gfni,avx2")]
    pub unsafe fn axpy_gfni(acc: &mut [u8], coef: u8, src: &[u8]) {
        let c = _mm256_set1_epi8(coef as i8);
        let (a, s) = (acc.as_mut_ptr(), src.as_ptr());
        // 64-byte main loop: two independent multiply chains in flight.
        let n64 = acc.len() / 64 * 64;
        let mut i = 0;
        while i < n64 {
            let v0 = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let v1 = _mm256_loadu_si256(s.add(i + 32) as *const __m256i);
            let d0 = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let d1 = _mm256_loadu_si256(a.add(i + 32) as *const __m256i);
            let p0 = _mm256_gf2p8mul_epi8(v0, c);
            let p1 = _mm256_gf2p8mul_epi8(v1, c);
            _mm256_storeu_si256(a.add(i) as *mut __m256i, _mm256_xor_si256(d0, p0));
            _mm256_storeu_si256(a.add(i + 32) as *mut __m256i, _mm256_xor_si256(d1, p1));
            i += 64;
        }
        let n32 = acc.len() / 32 * 32;
        while i < n32 {
            let v = _mm256_loadu_si256(s.add(i) as *const __m256i);
            let d = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let p = _mm256_gf2p8mul_epi8(v, c);
            _mm256_storeu_si256(a.add(i) as *mut __m256i, _mm256_xor_si256(d, p));
            i += 32;
        }
        if n32 < acc.len() {
            // Tables are built only when a sub-vector tail exists.
            axpy_tail(&mut acc[n32..], &NibbleTables::new(coef), &src[n32..]);
        }
    }

    /// Two-source fused GFNI axpy: one destination round trip per pair.
    #[target_feature(enable = "gfni,avx2")]
    pub unsafe fn axpy2_gfni(acc: &mut [u8], c0: u8, src0: &[u8], c1: u8, src1: &[u8]) {
        let cv0 = _mm256_set1_epi8(c0 as i8);
        let cv1 = _mm256_set1_epi8(c1 as i8);
        let n32 = acc.len() / 32 * 32;
        let (a, s0, s1) = (acc.as_mut_ptr(), src0.as_ptr(), src1.as_ptr());
        let mut i = 0;
        while i < n32 {
            let v0 = _mm256_loadu_si256(s0.add(i) as *const __m256i);
            let v1 = _mm256_loadu_si256(s1.add(i) as *const __m256i);
            let d = _mm256_loadu_si256(a.add(i) as *const __m256i);
            let p0 = _mm256_gf2p8mul_epi8(v0, cv0);
            let p1 = _mm256_gf2p8mul_epi8(v1, cv1);
            let x = _mm256_xor_si256(d, _mm256_xor_si256(p0, p1));
            _mm256_storeu_si256(a.add(i) as *mut __m256i, x);
            i += 32;
        }
        if n32 < acc.len() {
            axpy_tail(&mut acc[n32..], &NibbleTables::new(c0), &src0[n32..]);
            axpy_tail(&mut acc[n32..], &NibbleTables::new(c1), &src1[n32..]);
        }
    }

    #[target_feature(enable = "gfni,avx2")]
    pub unsafe fn scale_gfni(block: &mut [u8], x: u8) {
        let c = _mm256_set1_epi8(x as i8);
        let n = block.len() / 32 * 32;
        let b = block.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v = _mm256_loadu_si256(b.add(i) as *const __m256i);
            _mm256_storeu_si256(b.add(i) as *mut __m256i, _mm256_gf2p8mul_epi8(v, c));
            i += 32;
        }
        if n < block.len() {
            scale_tail(&mut block[n..], &NibbleTables::new(x));
        }
    }

    // -- AVX-512VBMI: 64-lane full-register byte permute -----------------
    //
    // `VPERMB` permutes across the whole 512-bit register (only the low 6
    // index bits matter), so broadcasting each 16-entry nibble table to
    // all four 128-bit quarters makes `table[idx & 15]` correct for all
    // 64 lanes in one instruction.

    /// One 64-lane product: `T_lo[v & 15] ^ T_hi[v >> 4]` via two VPERMBs.
    #[inline(always)]
    unsafe fn mul64(v: __m512i, lo_tbl: __m512i, hi_tbl: __m512i, mask: __m512i) -> __m512i {
        let lo = _mm512_and_si512(v, mask);
        let hi = _mm512_and_si512(_mm512_srli_epi64(v, 4), mask);
        _mm512_xor_si512(
            _mm512_permutexvar_epi8(lo, lo_tbl),
            _mm512_permutexvar_epi8(hi, hi_tbl),
        )
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
    pub unsafe fn axpy_vbmi(acc: &mut [u8], nt: &NibbleTables, src: &[u8]) {
        let lo_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(nt.lo.as_ptr() as *const __m128i));
        let hi_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(nt.hi.as_ptr() as *const __m128i));
        let mask = _mm512_set1_epi8(0x0F);
        let (a, s) = (acc.as_mut_ptr(), src.as_ptr());
        // 128-byte main loop: two independent permute chains in flight.
        let n128 = acc.len() / 128 * 128;
        let mut i = 0;
        while i < n128 {
            let v0 = _mm512_loadu_si512(s.add(i) as *const __m512i);
            let v1 = _mm512_loadu_si512(s.add(i + 64) as *const __m512i);
            let d0 = _mm512_loadu_si512(a.add(i) as *const __m512i);
            let d1 = _mm512_loadu_si512(a.add(i + 64) as *const __m512i);
            let p0 = mul64(v0, lo_tbl, hi_tbl, mask);
            let p1 = mul64(v1, lo_tbl, hi_tbl, mask);
            _mm512_storeu_si512(a.add(i) as *mut __m512i, _mm512_xor_si512(d0, p0));
            _mm512_storeu_si512(a.add(i + 64) as *mut __m512i, _mm512_xor_si512(d1, p1));
            i += 128;
        }
        let n64 = acc.len() / 64 * 64;
        while i < n64 {
            let v = _mm512_loadu_si512(s.add(i) as *const __m512i);
            let d = _mm512_loadu_si512(a.add(i) as *const __m512i);
            let p = mul64(v, lo_tbl, hi_tbl, mask);
            _mm512_storeu_si512(a.add(i) as *mut __m512i, _mm512_xor_si512(d, p));
            i += 64;
        }
        axpy_tail(&mut acc[n64..], nt, &src[n64..]);
    }

    /// Two-source fused VBMI axpy: one destination round trip per pair.
    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
    pub unsafe fn axpy2_vbmi(
        acc: &mut [u8],
        nt0: &NibbleTables,
        src0: &[u8],
        nt1: &NibbleTables,
        src1: &[u8],
    ) {
        let lo0 = _mm512_broadcast_i32x4(_mm_loadu_si128(nt0.lo.as_ptr() as *const __m128i));
        let hi0 = _mm512_broadcast_i32x4(_mm_loadu_si128(nt0.hi.as_ptr() as *const __m128i));
        let lo1 = _mm512_broadcast_i32x4(_mm_loadu_si128(nt1.lo.as_ptr() as *const __m128i));
        let hi1 = _mm512_broadcast_i32x4(_mm_loadu_si128(nt1.hi.as_ptr() as *const __m128i));
        let mask = _mm512_set1_epi8(0x0F);
        let n64 = acc.len() / 64 * 64;
        let (a, s0, s1) = (acc.as_mut_ptr(), src0.as_ptr(), src1.as_ptr());
        let mut i = 0;
        while i < n64 {
            let v0 = _mm512_loadu_si512(s0.add(i) as *const __m512i);
            let v1 = _mm512_loadu_si512(s1.add(i) as *const __m512i);
            let d = _mm512_loadu_si512(a.add(i) as *const __m512i);
            let p0 = mul64(v0, lo0, hi0, mask);
            let p1 = mul64(v1, lo1, hi1, mask);
            let x = _mm512_xor_si512(d, _mm512_xor_si512(p0, p1));
            _mm512_storeu_si512(a.add(i) as *mut __m512i, x);
            i += 64;
        }
        axpy_tail(&mut acc[n64..], nt0, &src0[n64..]);
        axpy_tail(&mut acc[n64..], nt1, &src1[n64..]);
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi")]
    pub unsafe fn scale_vbmi(block: &mut [u8], nt: &NibbleTables) {
        let lo_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(nt.lo.as_ptr() as *const __m128i));
        let hi_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(nt.hi.as_ptr() as *const __m128i));
        let mask = _mm512_set1_epi8(0x0F);
        let n = block.len() / 64 * 64;
        let b = block.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v = _mm512_loadu_si512(b.add(i) as *const __m512i);
            _mm512_storeu_si512(b.add(i) as *mut __m512i, mul64(v, lo_tbl, hi_tbl, mask));
            i += 64;
        }
        scale_tail(&mut block[n..], nt);
    }

    /// AVX-512 XOR, 128 bytes per iteration.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn xor_avx512(dst: &mut [u8], src: &[u8]) {
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let n128 = dst.len() / 128 * 128;
        let mut i = 0;
        while i < n128 {
            let a0 = _mm512_loadu_si512(d.add(i) as *const __m512i);
            let b0 = _mm512_loadu_si512(s.add(i) as *const __m512i);
            let a1 = _mm512_loadu_si512(d.add(i + 64) as *const __m512i);
            let b1 = _mm512_loadu_si512(s.add(i + 64) as *const __m512i);
            _mm512_storeu_si512(d.add(i) as *mut __m512i, _mm512_xor_si512(a0, b0));
            _mm512_storeu_si512(d.add(i + 64) as *mut __m512i, _mm512_xor_si512(a1, b1));
            i += 128;
        }
        let n64 = dst.len() / 64 * 64;
        while i < n64 {
            let a = _mm512_loadu_si512(d.add(i) as *const __m512i);
            let b = _mm512_loadu_si512(s.add(i) as *const __m512i);
            _mm512_storeu_si512(d.add(i) as *mut __m512i, _mm512_xor_si512(a, b));
            i += 64;
        }
        for (db, sb) in dst[n64..].iter_mut().zip(&src[n64..]) {
            *db ^= *sb;
        }
    }

    /// SSE2 XOR (SSE2 is x86_64 baseline; used on the SSSE3 tier).
    pub unsafe fn xor_sse2(dst: &mut [u8], src: &[u8]) {
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let n = dst.len() / 16 * 16;
        let mut i = 0;
        while i < n {
            let a = _mm_loadu_si128(d.add(i) as *const __m128i);
            let b = _mm_loadu_si128(s.add(i) as *const __m128i);
            _mm_storeu_si128(d.add(i) as *mut __m128i, _mm_xor_si128(a, b));
            i += 16;
        }
        for (db, sb) in dst[n..].iter_mut().zip(&src[n..]) {
            *db ^= *sb;
        }
    }
}

// ---------------------------------------------------------------------------
// aarch64: NEON TBL
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{axpy_tail, scale_tail};
    use crate::kernels::NibbleTables;
    use std::arch::aarch64::*;

    /// One 16-lane product via two `TBL` lookups. `vqtbl1q_u8` zeroes
    /// lanes whose index is ≥ 16; ours are masked to 0..15.
    #[inline(always)]
    unsafe fn mul16(v: uint8x16_t, lo_tbl: uint8x16_t, hi_tbl: uint8x16_t) -> uint8x16_t {
        let lo = vandq_u8(v, vdupq_n_u8(0x0F));
        let hi = vshrq_n_u8::<4>(v);
        veorq_u8(vqtbl1q_u8(lo_tbl, lo), vqtbl1q_u8(hi_tbl, hi))
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy_neon(acc: &mut [u8], nt: &NibbleTables, src: &[u8]) {
        let lo_tbl = vld1q_u8(nt.lo.as_ptr());
        let hi_tbl = vld1q_u8(nt.hi.as_ptr());
        let n = acc.len() / 16 * 16;
        let (a, s) = (acc.as_mut_ptr(), src.as_ptr());
        let mut i = 0;
        while i < n {
            let v = vld1q_u8(s.add(i));
            let d = vld1q_u8(a.add(i));
            vst1q_u8(a.add(i), veorq_u8(d, mul16(v, lo_tbl, hi_tbl)));
            i += 16;
        }
        axpy_tail(&mut acc[n..], nt, &src[n..]);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn scale_neon(block: &mut [u8], nt: &NibbleTables) {
        let lo_tbl = vld1q_u8(nt.lo.as_ptr());
        let hi_tbl = vld1q_u8(nt.hi.as_ptr());
        let n = block.len() / 16 * 16;
        let b = block.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let v = vld1q_u8(b.add(i));
            vst1q_u8(b.add(i), mul16(v, lo_tbl, hi_tbl));
            i += 16;
        }
        scale_tail(&mut block[n..], nt);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn xor_neon(dst: &mut [u8], src: &[u8]) {
        let (d, s) = (dst.as_mut_ptr(), src.as_ptr());
        let n = dst.len() / 16 * 16;
        let mut i = 0;
        while i < n {
            let a = vld1q_u8(d.add(i));
            let b = vld1q_u8(s.add(i));
            vst1q_u8(d.add(i), veorq_u8(a, b));
            i += 16;
        }
        for (db, sb) in dst[n..].iter_mut().zip(&src[n..]) {
            *db ^= *sb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gf_axpy_scalar, gf_scale_scalar, xor_into_scalar};

    #[test]
    fn probe_is_stable() {
        assert_eq!(level(), level());
    }

    #[test]
    fn probe_pick_is_supported() {
        assert!(tier_supported(level()));
    }

    /// Every tier the host can execute — not just the probe's pick —
    /// matches the scalar reference through the pinned entry points.
    #[test]
    fn every_supported_tier_matches_scalar() {
        let tiers = [
            SimdLevel::Ssse3,
            SimdLevel::Avx2,
            SimdLevel::Avx512Vbmi,
            SimdLevel::Gfni,
            SimdLevel::Neon,
        ];
        for tier in tiers.into_iter().filter(|&t| tier_supported(t)) {
            for len in [0usize, 1, 15, 31, 33, 63, 65, 127, 129, 257] {
                let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let init: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
                for coef in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
                    let mut a = init.clone();
                    let mut b = init.clone();
                    gf_axpy_simd_at(tier, &mut a, coef, &src);
                    gf_axpy_scalar(&mut b, coef, &src);
                    assert_eq!(a, b, "axpy {tier:?} len={len} coef={coef}");

                    let mut a = init.clone();
                    let mut b = init.clone();
                    gf_scale_simd_at(tier, &mut a, coef);
                    gf_scale_scalar(&mut b, coef);
                    assert_eq!(a, b, "scale {tier:?} len={len} x={coef}");
                }
                let mut a = init.clone();
                let mut b = init.clone();
                xor_into_simd_at(tier, &mut a, &src);
                xor_into_scalar(&mut b, &src);
                assert_eq!(a, b, "xor {tier:?} len={len}");

                let srcs_owned: Vec<(u8, Vec<u8>)> = (0..5u8)
                    .map(|t| {
                        (
                            t.wrapping_mul(0x3B),
                            (0..len).map(|i| (i as u8).wrapping_mul(t + 3)).collect(),
                        )
                    })
                    .collect();
                let srcs: Vec<(u8, &[u8])> =
                    srcs_owned.iter().map(|(c, s)| (*c, s.as_slice())).collect();
                let mut a = init.clone();
                let mut b = init.clone();
                gf_axpy_multi_simd_at(tier, &mut a, &srcs);
                for &(c, s) in &srcs {
                    gf_axpy_scalar(&mut b, c, s);
                }
                assert_eq!(a, b, "multi {tier:?} len={len}");
            }
        }
    }

    #[test]
    fn simd_axpy_matches_scalar_when_available() {
        if !available() {
            return;
        }
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for coef in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
                let mut a: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
                let mut b = a.clone();
                gf_axpy_simd(&mut a, coef, &src);
                gf_axpy_scalar(&mut b, coef, &src);
                assert_eq!(a, b, "len={len} coef={coef}");
            }
        }
    }

    #[test]
    fn simd_scale_and_xor_match_scalar_when_available() {
        if !available() {
            return;
        }
        for len in [0usize, 7, 16, 33, 64, 129] {
            let init: Vec<u8> = (0..len).map(|i| (i * 29 + 1) as u8).collect();
            for x in [0u8, 1, 2, 0x35, 0xFE] {
                let mut a = init.clone();
                let mut b = init.clone();
                gf_scale_simd(&mut a, x);
                gf_scale_scalar(&mut b, x);
                assert_eq!(a, b, "scale len={len} x={x}");
            }
            let src: Vec<u8> = (0..len).map(|i| (i * 13 + 5) as u8).collect();
            let mut a = init.clone();
            let mut b = init.clone();
            xor_into_simd(&mut a, &src);
            xor_into_scalar(&mut b, &src);
            assert_eq!(a, b, "xor len={len}");
        }
    }

    #[test]
    fn simd_multi_matches_per_source() {
        if !available() {
            return;
        }
        let len = 97;
        let srcs_owned: Vec<(u8, Vec<u8>)> = (0..5u8)
            .map(|t| {
                (
                    t.wrapping_mul(0x3B),
                    (0..len).map(|i| (i as u8).wrapping_mul(t + 3)).collect(),
                )
            })
            .collect();
        let srcs: Vec<(u8, &[u8])> = srcs_owned.iter().map(|(c, s)| (*c, s.as_slice())).collect();
        let mut a = vec![0x5Au8; len];
        let mut b = a.clone();
        gf_axpy_multi_simd(&mut a, &srcs);
        for &(c, s) in &srcs {
            gf_axpy_scalar(&mut b, c, s);
        }
        assert_eq!(a, b);
    }
}
