//! Tornado codes: cascaded sparse bipartite graphs (§2.2.3).
//!
//! "A Tornado code C(B₀, B₁, …, Bₘ, A) is a cascade of bipartite graphs
//! … The graph Bᵢ has Kβⁱ input symbols and produces Kβⁱ⁺¹ check symbols
//! … At the last level, a conventional optimal erasure code is used."
//! The final code word is the original symbols plus every level's check
//! symbols; the overall rate is 1−β.
//!
//! Tornado codes were the first linear-time erasure codes and the
//! stepping stone to LT codes. They are *fixed-rate* — the property that
//! makes them less suitable for RobuSTore than rateless LT codes (§5.2.1)
//! — but they complete the palette of the paper's Chapter 2 survey, and
//! give the harness another decodability baseline.
//!
//! Construction here: each level is a regular-ish sparse bipartite graph
//! (left degree 3 spread by shuffled permutations); the terminal level is
//! Reed–Solomon. Decoding peels the cascade back to front with the
//! generic sparse-XOR solver, finishing with RS for the tail.

use rand::seq::SliceRandom;
use robustore_simkit::SeedSequence;

use crate::raptor::peel_sparse_xor;
use crate::rs::ReedSolomon;
use crate::{xor_into, Block, CodingError};

/// One cascade level: a sparse bipartite graph from `inputs` symbols to
/// `checks` check symbols.
#[derive(Debug, Clone)]
struct Level {
    inputs: usize,
    /// edges[c] = input indices XORed into check c (indices are local to
    /// the level's input symbols).
    edges: Vec<Vec<u32>>,
}

/// A Tornado code with rate 1−β.
#[derive(Debug, Clone)]
pub struct TornadoCode {
    k: usize,
    beta: f64,
    levels: Vec<Level>,
    /// Terminal optimal code over the last level's check symbols.
    tail: ReedSolomon,
    /// Total symbols in the code word.
    n: usize,
}

/// Left degree of every cascade graph (classic small constant).
const LEFT_DEGREE: usize = 3;

impl TornadoCode {
    /// Build a Tornado code over `k` originals with parameter `β ∈ (0,1)`
    /// (code rate 1−β, so total symbols ≈ k/(1−β)). Cascading stops when a
    /// level would produce fewer than 8 symbols; the terminal RS code has
    /// rate 1−β as well.
    pub fn new(k: usize, beta: f64, seed: u64) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        if !(0.0..1.0).contains(&beta) || beta <= 0.0 {
            return Err(CodingError::InvalidParameters(
                "beta must be in (0, 1)".into(),
            ));
        }
        let seq = SeedSequence::new(seed);
        let mut levels = Vec::new();
        let mut inputs = k;
        let mut level_idx = 0u64;
        loop {
            let checks = ((inputs as f64) * beta).ceil() as usize;
            if checks < 8 || inputs < 8 {
                break;
            }
            levels.push(Self::make_level(inputs, checks, &seq, level_idx));
            inputs = checks;
            level_idx += 1;
        }
        // Terminal optimal code over the last `inputs` symbols.
        let tail_checks = (((inputs as f64) * beta / (1.0 - beta)).ceil() as usize).max(1);
        let tail_n = inputs + tail_checks;
        if tail_n > 255 {
            return Err(CodingError::InvalidParameters(format!(
                "terminal RS level too wide ({tail_n} > 255); increase beta or K granularity"
            )));
        }
        let tail = ReedSolomon::new(inputs, tail_n)?;
        let n = k + levels.iter().map(|l| l.edges.len()).sum::<usize>() + tail_n;
        Ok(TornadoCode {
            k,
            beta,
            levels,
            tail,
            n,
        })
    }

    fn make_level(inputs: usize, checks: usize, seq: &SeedSequence, idx: u64) -> Level {
        let mut rng = seq.fork("tornado-level", idx);
        // Spread input endpoints with shuffled permutations so every input
        // feeds ≈ LEFT_DEGREE checks.
        let mut stream: Vec<u32> = Vec::with_capacity(inputs * LEFT_DEGREE);
        for _ in 0..LEFT_DEGREE {
            let mut perm: Vec<u32> = (0..inputs as u32).collect();
            perm.shuffle(&mut rng);
            stream.extend(perm);
        }
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); checks];
        for (i, input) in stream.into_iter().enumerate() {
            let c = &mut edges[i % checks];
            if !c.contains(&input) {
                c.push(input);
            }
        }
        for c in &mut edges {
            c.sort_unstable();
        }
        Level { inputs, edges }
    }

    /// Original symbol count K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total code-word symbols N (originals + all checks + RS tail).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Effective rate K/N.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// The β parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Cascade depth (bipartite levels before the RS tail).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Encode K blocks into the full N-symbol code word. Symbol order:
    /// originals, level-0 checks, level-1 checks, …, RS tail symbols.
    pub fn encode(&self, data: &[Block]) -> Result<Vec<Block>, CodingError> {
        if data.len() != self.k {
            return Err(CodingError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        let mut out: Vec<Block> = data.to_vec();
        let mut level_start = 0usize;
        for level in &self.levels {
            let inputs = &out[level_start..level_start + level.inputs];
            let mut checks: Vec<Block> = Vec::with_capacity(level.edges.len());
            for edge in &level.edges {
                let mut c = vec![0u8; len];
                for &i in edge {
                    xor_into(&mut c, &inputs[i as usize]);
                }
                checks.push(c);
            }
            level_start += level.inputs;
            out.extend(checks);
        }
        // RS tail over the last level's outputs, encoded straight from the
        // code word under construction (no staging copy).
        debug_assert_eq!(out[level_start..].len(), self.tail.k());
        let tail = self.tail.encode(&out[level_start..])?;
        // The RS code word replaces nothing; we append the full tail
        // (systematic-free), so the last level's symbols appear both raw
        // and inside the RS word — matching "the cascade is ended with an
        // erasure-correcting code".
        out.extend(tail);
        Ok(out)
    }

    /// Decode from `(symbol_index, block)` pairs over the N-symbol word.
    pub fn decode(&self, received: &[(usize, Block)]) -> Result<Vec<Block>, CodingError> {
        if received.is_empty() {
            return Err(CodingError::NotEnoughBlocks {
                got: 0,
                need: self.k,
            });
        }
        let len = received[0].1.len();
        if received.iter().any(|(_, b)| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        // Variable space: all non-tail symbols (originals + level checks).
        let plain_count = self.n - self.tail.n();
        let mut known: Vec<Option<Block>> = vec![None; plain_count];
        let mut tail_rx: Vec<(usize, Block)> = Vec::new();
        for (idx, b) in received {
            if *idx >= self.n {
                return Err(CodingError::InvalidBlockIndex(*idx));
            }
            if *idx < plain_count {
                known[*idx] = Some(b.clone());
            } else {
                tail_rx.push((*idx - plain_count, b.clone()));
            }
        }
        // Recover the last level's symbols from the RS tail if possible.
        if tail_rx.len() >= self.tail.k() {
            if let Ok(last) = self.tail.decode(&tail_rx) {
                let start = plain_count - self.tail.k();
                for (i, b) in last.into_iter().enumerate() {
                    known[start + i] = Some(b);
                }
            }
        }
        // Joint peeling over every cascade level: check c of a level is an
        // equation  check ⊕ (⊕ inputs) = 0  over global symbol ids.
        let mut equations: Vec<(Block, Vec<u32>)> = Vec::new();
        let mut level_start = 0usize;
        let mut check_start;
        for level in &self.levels {
            check_start = level_start + level.inputs;
            for (c, edge) in level.edges.iter().enumerate() {
                let mut vars: Vec<u32> = edge
                    .iter()
                    .map(|&i| (level_start + i as usize) as u32)
                    .collect();
                vars.push((check_start + c) as u32);
                equations.push((vec![0u8; len], vars));
            }
            level_start = check_start;
        }
        // Known symbols become degree-1 equations; their buffers move into
        // the solver rather than being copied again.
        for (i, k) in known.into_iter().enumerate() {
            if let Some(b) = k {
                equations.push((b, vec![i as u32]));
            }
        }
        let solved = peel_sparse_xor(plain_count, equations);
        let mut out = Vec::with_capacity(self.k);
        for slot in solved.into_iter().take(self.k) {
            match slot {
                Some(b) => out.push(b),
                None => return Err(CodingError::DecodeFailed),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 67 + j * 5 + 2) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn construction_shape() {
        let t = TornadoCode::new(256, 0.5, 1).unwrap();
        assert_eq!(t.k(), 256);
        assert!(
            t.depth() >= 3,
            "should cascade several levels: {}",
            t.depth()
        );
        // Rate ≈ 1−β = 0.5: N ≈ 2K (within slack from level rounding).
        assert!((t.rate() - 0.5).abs() < 0.1, "rate {}", t.rate());
    }

    #[test]
    fn roundtrip_full_word() {
        let t = TornadoCode::new(64, 0.5, 2).unwrap();
        let data = make_data(64, 24);
        let coded = t.encode(&data).unwrap();
        assert_eq!(coded.len(), t.n());
        let rx: Vec<_> = coded.into_iter().enumerate().collect();
        assert_eq!(t.decode(&rx).unwrap(), data);
    }

    #[test]
    fn survives_random_erasures() {
        // Drop 20% of symbols at rate 0.5: decode should usually succeed.
        let t = TornadoCode::new(128, 0.5, 3).unwrap();
        let data = make_data(128, 8);
        let coded = t.encode(&data).unwrap();
        let mut ok = 0;
        for trial in 0..10u64 {
            let mut idx: Vec<usize> = (0..t.n()).collect();
            let mut rng = SeedSequence::new(trial).fork("erase", 0);
            idx.shuffle(&mut rng);
            let keep = t.n() * 8 / 10;
            let rx: Vec<_> = idx[..keep].iter().map(|&i| (i, coded[i].clone())).collect();
            if t.decode(&rx).is_ok_and(|d| d == data) {
                ok += 1;
            }
        }
        assert!(ok >= 8, "should decode most 20%-erasure trials: {ok}/10");
    }

    #[test]
    fn fails_gracefully_below_k() {
        let t = TornadoCode::new(32, 0.5, 4).unwrap();
        let data = make_data(32, 8);
        let coded = t.encode(&data).unwrap();
        let rx: Vec<_> = (0..10).map(|i| (i, coded[i].clone())).collect();
        assert_eq!(t.decode(&rx), Err(CodingError::DecodeFailed));
    }

    #[test]
    fn rs_tail_rescues_last_level() {
        // Erase ALL plain symbols of the last level; the RS tail restores
        // them and the cascade unwinds.
        let t = TornadoCode::new(64, 0.5, 5).unwrap();
        let data = make_data(64, 8);
        let coded = t.encode(&data).unwrap();
        let plain_count = t.n() - t.tail.n();
        let last_start = plain_count - t.tail.k();
        let rx: Vec<_> = (0..t.n())
            .filter(|&i| !(last_start..plain_count).contains(&i))
            .map(|i| (i, coded[i].clone()))
            .collect();
        assert_eq!(t.decode(&rx).unwrap(), data);
    }

    #[test]
    fn invalid_parameters() {
        assert!(TornadoCode::new(0, 0.5, 1).is_err());
        assert!(TornadoCode::new(10, 0.0, 1).is_err());
        assert!(TornadoCode::new(10, 1.0, 1).is_err());
    }
}
