#![warn(missing_docs)]

//! Erasure-coding library for RobuSTore.
//!
//! RobuSTore's first subsidiary thesis (paper §1.3) is that erasure codes
//! can be designed to deliver high encoding/decoding throughput. This crate
//! implements the codes the paper analyses and the one it selects:
//!
//! * [`lt`] — **Luby Transform codes with the paper's storage-oriented
//!   improvements** (§5.2.3): guaranteed decodability by graph checking,
//!   uniform coverage of original blocks via pseudo-random permutation
//!   selection, lazy-XOR peeling decoding, and word-at-a-time XOR kernels.
//!   This is the code RobuSTore uses.
//! * [`rs`] — Reed–Solomon codes over GF(2⁸) (Vandermonde construction),
//!   the *optimal-code* baseline whose quadratic coding cost motivates the
//!   choice of LT codes (Table 5-1, §5.2.1).
//! * [`parity`] — single-parity codes (RAID-5 style), the simplest erasure
//!   code (§2.2.2).
//! * [`raptor`] — Raptor codes (§2.2.3): a sparse parity pre-code
//!   concatenated with LT, decoded by joint peeling — the "more efficient
//!   erasure codes" extension of §7.3.
//! * [`tornado`] — Tornado codes (§2.2.3): cascaded sparse bipartite
//!   graphs terminated by Reed–Solomon, the fixed-rate ancestor of LT.
//! * [`replication`] — plain replication treated as a degenerate erasure
//!   code, the layout used by the RRAID-S/RRAID-A baselines.
//! * [`soliton`] — the ideal and robust Soliton degree distributions.
//! * [`analysis`] — the Appendix-A reassembly-probability analysis behind
//!   Figure 4-1 (replication vs erasure-coded redundancy).
//! * [`block`] — the shared block representation and XOR helpers.
//! * [`kernels`] — the hot-loop substrate every code runs on: vectorized
//!   GF(256) multiply-accumulate and wide XOR with scalar reference
//!   kernels (byte-identical, runtime-selectable), plus [`BlockPool`]
//!   buffer recycling.
//! * `simd` (feature-gated) — the same split-nibble GF(256) kernels on
//!   real shuffle hardware: SSSE3/AVX2 `PSHUFB` on x86_64, NEON `TBL` on
//!   aarch64, with runtime CPU probing and automatic fallback to the
//!   table kernels ([`simd_available`], `set_kernel(Kernel::Simd)`).
//!
//! Terminology follows §2.2.1: a *data segment* of K *blocks* is encoded
//! into N *coded blocks*; `D = N/K − 1` is the degree of data redundancy and
//! the *reception overhead* ε is such that (1+ε)K received blocks suffice to
//! decode.
//!
//! # Example: encode, lose most blocks, decode
//!
//! ```
//! use robustore_erasure::{LtCode, LtDecoder, LtParams};
//!
//! // A segment of K = 8 blocks, coded at 3x redundancy (N = 32).
//! let data: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; 1024]).collect();
//! let code = LtCode::plan(8, 32, LtParams::default(), 42)?;
//! let coded = code.encode(&data)?;
//!
//! // Blocks arrive in arbitrary order; feed them until the decoder
//! // completes — typically well before all 32 have arrived. The decoder
//! // takes ownership: no copies are made on receive.
//! let mut decoder = LtDecoder::new(&code, 1024);
//! let mut used = 0;
//! for (j, block) in coded.into_iter().enumerate().rev() {
//!     used += 1;
//!     if decoder.receive(j, block) {
//!         break;
//!     }
//! }
//! assert!(used < 32);
//! assert_eq!(decoder.into_data().unwrap(), data);
//! # Ok::<(), robustore_erasure::CodingError>(())
//! ```

pub mod analysis;
pub mod block;
pub mod kernels;
pub mod lt;
pub mod parity;
pub mod raptor;
pub mod replication;
pub mod rs;
#[cfg(feature = "simd")]
pub mod simd;
pub mod soliton;
pub mod tornado;

pub use block::{xor_into, Block};
pub use kernels::{set_kernel, simd_available, BlockPool, Kernel};
pub use lt::{LtCode, LtDecoder, LtParams, SymbolDecoder};
pub use raptor::RaptorCode;
pub use rs::ReedSolomon;
pub use soliton::RobustSoliton;
pub use tornado::TornadoCode;

/// Errors produced by the coding implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The supplied blocks do not all have the same length.
    UnequalBlockLengths,
    /// Fewer blocks were supplied than the code needs to decode.
    NotEnoughBlocks {
        /// Blocks supplied.
        got: usize,
        /// Minimum required by the code (K for optimal codes).
        need: usize,
    },
    /// The supplied blocks were insufficient to decode (near-optimal codes
    /// can fail even with ≥ K blocks).
    DecodeFailed,
    /// A block index was out of range for the code.
    InvalidBlockIndex(usize),
    /// A parameter was out of range (e.g. K = 0, N < K, RS with N > 255).
    InvalidParameters(String),
    /// The same block index was supplied more than once.
    DuplicateBlockIndex(usize),
}

impl std::fmt::Display for CodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodingError::UnequalBlockLengths => write!(f, "blocks have unequal lengths"),
            CodingError::NotEnoughBlocks { got, need } => {
                write!(f, "not enough blocks to decode: got {got}, need {need}")
            }
            CodingError::DecodeFailed => write!(f, "decoding failed with the supplied blocks"),
            CodingError::InvalidBlockIndex(i) => write!(f, "invalid block index {i}"),
            CodingError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            CodingError::DuplicateBlockIndex(i) => write!(f, "duplicate block index {i}"),
        }
    }
}

impl std::error::Error for CodingError {}
