//! Reassembly-probability analysis (Appendix A, Figure 4-1).
//!
//! The paper quantifies the flexibility advantage of erasure-coded
//! redundancy over replication: with K originals stored at 4× redundancy,
//! what is the probability that the first M randomly-arriving blocks
//! reconstruct the data?
//!
//! * **Replication** (Appendix A.1): M distinct balls from 4K (K colours ×
//!   4 copies) must cover all K colours. The paper's inclusion–exclusion
//!   formula alternates signs and cancels catastrophically at K = 1024, so
//!   we evaluate the *same quantity exactly* by a positive-term dynamic
//!   program in log space, and keep the inclusion–exclusion form for
//!   small-K cross-checks.
//! * **Erasure-coded** (Appendix A.2): with the idealised degree-d model
//!   (every coded block covers d uniform originals), M coded blocks decode
//!   iff d·M ball throws cover all K bins — an occupancy Markov chain.
//! * **Actual LT codes**: Monte Carlo over real [`LtCode`] graphs and the
//!   peeling decoder, the curve a deployment actually sees.

use rand::seq::SliceRandom;

use crate::lt::{blocks_needed, LtCode, LtParams};
use robustore_simkit::SeedSequence;

/// Natural logs of factorials 0..=n.
fn ln_factorials(n: usize) -> Vec<f64> {
    let mut t = Vec::with_capacity(n + 1);
    t.push(0.0);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += (i as f64).ln();
        t.push(acc);
    }
    t
}

/// ln C(n, k) from a precomputed factorial table; −∞ when k > n.
fn ln_binom(lnfact: &[f64], n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    lnfact[n] - lnfact[k] - lnfact[n - k]
}

/// Numerically stable log(Σ exp(xᵢ)) for a small slice.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Exact replication reassembly curve.
///
/// Returns `P(M)` for `M = 0..=copies*k`: the probability that M blocks
/// drawn uniformly without replacement from `copies·k` stored blocks
/// (`copies` identical copies of each of `k` originals) include at least
/// one copy of every original.
///
/// Exact positive-term DP: let `W(c, m)` be the number of m-subsets of the
/// blocks of `c` specific colours that cover all `c` colours; then
/// `W(c, m) = Σ_{t=1..copies} C(copies, t) · W(c−1, m−t)` and
/// `P(M) = W(k, M) / C(copies·k, M)`.
pub fn replication_reassembly_cdf(k: usize, copies: usize) -> Vec<f64> {
    assert!(k >= 1 && copies >= 1);
    let n = k * copies;
    let lnfact = ln_factorials(n);
    let ln_choose_copies: Vec<f64> = (0..=copies).map(|t| ln_binom(&lnfact, copies, t)).collect();

    // prev[m] = ln W(c−1, m); start with c = 0: W(0, 0) = 1.
    let mut prev = vec![f64::NEG_INFINITY; n + 1];
    prev[0] = 0.0;
    let mut next = vec![f64::NEG_INFINITY; n + 1];
    let mut terms = Vec::with_capacity(copies);
    for c in 1..=k {
        let max_m = c * copies;
        for item in next.iter_mut().take(n + 1) {
            *item = f64::NEG_INFINITY;
        }
        // W(c, m) needs m ≥ c (each colour contributes ≥ 1 block).
        for m in c..=max_m {
            terms.clear();
            for t in 1..=copies.min(m) {
                let w = prev[m - t];
                if w != f64::NEG_INFINITY {
                    terms.push(ln_choose_copies[t] + w);
                }
            }
            next[m] = log_sum_exp(&terms);
        }
        std::mem::swap(&mut prev, &mut next);
    }

    (0..=n)
        .map(|m| {
            if prev[m] == f64::NEG_INFINITY {
                0.0
            } else {
                (prev[m] - ln_binom(&lnfact, n, m)).exp().clamp(0.0, 1.0)
            }
        })
        .collect()
}

/// The paper's inclusion–exclusion form of the replication probability
/// (Appendix A.1), usable only for small K before cancellation destroys it.
/// Provided for cross-checking the DP.
pub fn replication_reassembly_inclusion_exclusion(k: usize, copies: usize, m: usize) -> f64 {
    let n = k * copies;
    assert!(m <= n);
    let lnfact = ln_factorials(n);
    let ln_cnm = ln_binom(&lnfact, n, m);
    let mut total = 0.0f64;
    for i in 1..=k {
        let ln_term = ln_binom(&lnfact, k, i) + ln_binom(&lnfact, copies * i, m) - ln_cnm;
        if ln_term == f64::NEG_INFINITY {
            continue;
        }
        let sign = if (k - i).is_multiple_of(2) { 1.0 } else { -1.0 };
        total += sign * ln_term.exp();
    }
    total.clamp(0.0, 1.0)
}

/// Idealised erasure-coded reassembly curve (Appendix A.2).
///
/// Returns `P_c(M)` for `M = 0..=m_max`: the probability that M coded
/// blocks, each covering `degree` independent uniform originals, cover all
/// `k` originals (the paper's degree-5 approximation of LT decoding).
///
/// Evaluated by the exact occupancy Markov chain over "number of distinct
/// bins hit" — positive terms only, no cancellation at any K.
pub fn coded_reassembly_cdf(k: usize, degree: usize, m_max: usize) -> Vec<f64> {
    assert!(k >= 1 && degree >= 1);
    let kf = k as f64;
    // dist[i] = P(i distinct originals covered) after t ball throws.
    let mut dist = vec![0.0f64; k + 1];
    dist[0] = 1.0;
    let mut out = Vec::with_capacity(m_max + 1);
    out.push(if k == 0 { 1.0 } else { dist[k] });
    for _m in 1..=m_max {
        for _ in 0..degree {
            // One throw: bin already hit with prob i/k, new with (k−i)/k.
            for i in (1..=k).rev() {
                dist[i] = dist[i] * (i as f64 / kf) + dist[i - 1] * ((k - i + 1) as f64 / kf);
            }
            dist[0] = 0.0;
        }
        out.push(dist[k]);
    }
    out
}

/// Monte Carlo estimate of the replication reassembly curve: empirical
/// CDF of "blocks needed to cover all originals" over `trials` random
/// arrival orders. Returns `P(M)` for `M = 0..=copies*k`.
pub fn replication_reassembly_mc(k: usize, copies: usize, trials: usize, seed: u64) -> Vec<f64> {
    let n = k * copies;
    let seq = SeedSequence::new(seed);
    let mut rng = seq.fork("replication-mc", 0);
    let mut counts = vec![0usize; n + 1];
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..trials {
        order.shuffle(&mut rng);
        let mut covered = vec![false; k];
        let mut missing = k;
        for (drawn, &j) in order.iter().enumerate() {
            let orig = j % k;
            if !covered[orig] {
                covered[orig] = true;
                missing -= 1;
                if missing == 0 {
                    counts[drawn + 1] += 1;
                    break;
                }
            }
        }
    }
    to_cdf(&counts, trials)
}

/// Monte Carlo curve for *actual* LT codes: empirical CDF of blocks needed
/// by the real peeling decoder under random arrival order, over `trials`
/// independent (graph, order) pairs. Returns `P(M)` for `M = 0..=n`.
pub fn lt_reassembly_mc(
    k: usize,
    n: usize,
    params: LtParams,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let seq = SeedSequence::new(seed);
    let mut counts = vec![0usize; n + 1];
    let mut order: Vec<usize> = (0..n).collect();
    for t in 0..trials {
        let code = LtCode::plan(k, n, params, seq.seed_for("lt-graph", t as u64))
            .expect("valid parameters");
        let mut rng = seq.fork("lt-order", t as u64);
        order.shuffle(&mut rng);
        let (needed, _) = blocks_needed(&code, order.iter().copied())
            .expect("full arrival always decodes a planned graph");
        counts[needed] += 1;
    }
    to_cdf(&counts, trials)
}

/// Mean blocks needed implied by a reassembly CDF.
pub fn mean_blocks_needed(cdf: &[f64]) -> f64 {
    // E[M] = Σ_{m≥0} P(M > m) = Σ (1 − cdf[m]); cdf[last] is 1.
    cdf.iter().map(|&p| 1.0 - p).sum()
}

fn to_cdf(counts: &[usize], trials: usize) -> Vec<f64> {
    let mut acc = 0usize;
    counts
        .iter()
        .map(|&c| {
            acc += c;
            acc as f64 / trials as f64
        })
        .collect()
}

/// Minimum coded blocks for reconstruction under random coverage,
/// K·ln K / d (§5.2.2) — the coverage lower bound on any LT configuration.
pub fn lt_coverage_lower_bound(k: usize, mean_degree: f64) -> f64 {
    let kf = k as f64;
    kf * kf.ln() / mean_degree
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force replication coverage probability by enumerating subsets
    /// (tiny cases only).
    fn brute_replication(k: usize, copies: usize, m: usize) -> f64 {
        let n = k * copies;
        let mut covered_sets = 0usize;
        let mut total = 0usize;
        // Enumerate all m-subsets of n via bitmask (n ≤ 16).
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize != m {
                continue;
            }
            total += 1;
            let mut cover = vec![false; k];
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    cover[j % k] = true;
                }
            }
            if cover.iter().all(|&c| c) {
                covered_sets += 1;
            }
        }
        covered_sets as f64 / total as f64
    }

    #[test]
    fn replication_dp_matches_brute_force() {
        for (k, copies) in [(2usize, 2usize), (3, 2), (2, 3), (4, 2), (3, 3)] {
            let cdf = replication_reassembly_cdf(k, copies);
            for (m, &dp) in cdf.iter().enumerate() {
                let brute = brute_replication(k, copies, m);
                assert!(
                    (dp - brute).abs() < 1e-9,
                    "k={k} copies={copies} m={m}: dp {dp} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn replication_dp_matches_inclusion_exclusion_small_k() {
        let k = 12;
        let copies = 4;
        let cdf = replication_reassembly_cdf(k, copies);
        for m in [12usize, 20, 30, 40, 48] {
            let ie = replication_reassembly_inclusion_exclusion(k, copies, m);
            assert!(
                (cdf[m] - ie).abs() < 1e-6,
                "m={m}: dp {} vs inclusion-exclusion {ie}",
                cdf[m]
            );
        }
    }

    #[test]
    fn replication_cdf_shape() {
        let cdf = replication_reassembly_cdf(64, 4);
        assert_eq!(cdf.len(), 257);
        assert_eq!(cdf[0], 0.0);
        assert!(cdf[63] == 0.0, "fewer than K blocks can never cover");
        assert!((cdf[256] - 1.0).abs() < 1e-9, "all blocks always cover");
        assert!(cdf.windows(2).all(|w| w[1] >= w[0] - 1e-12), "monotone");
    }

    #[test]
    fn coded_cdf_shape_and_coupon_limit() {
        let k = 64;
        let cdf = coded_reassembly_cdf(k, 5, 4 * k);
        assert_eq!(cdf[0], 0.0);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        // With 4K blocks of degree 5, coverage is essentially certain.
        assert!(cdf[4 * k] > 0.999);
        // Mean needed ≈ K·ln K / 5 by the coupon collector (±30%).
        let mean = mean_blocks_needed(&cdf);
        let bound = lt_coverage_lower_bound(k, 5.0);
        assert!(
            (mean - bound).abs() / bound < 0.35,
            "mean {mean:.1} vs coverage bound {bound:.1}"
        );
    }

    #[test]
    fn erasure_coding_beats_replication() {
        // The Figure 4-1 headline: ≈1.5K coded blocks vs ≈3K replicated
        // blocks at the 50% point, K=64 here for test speed.
        let k = 64;
        let rep = replication_reassembly_cdf(k, 4);
        let coded = coded_reassembly_cdf(k, 5, 4 * k);
        let median = |cdf: &[f64]| cdf.iter().position(|&p| p >= 0.5).unwrap();
        let m_rep = median(&rep);
        let m_coded = median(&coded);
        assert!(
            m_coded * 3 < m_rep * 2,
            "coded median {m_coded} should be well below replication median {m_rep}"
        );
    }

    #[test]
    fn replication_mc_matches_exact() {
        let k = 16;
        let copies = 4;
        let exact = replication_reassembly_cdf(k, copies);
        let mc = replication_reassembly_mc(k, copies, 20_000, 5);
        for m in (0..=k * copies).step_by(8) {
            assert!(
                (exact[m] - mc[m]).abs() < 0.02,
                "m={m}: exact {} vs mc {}",
                exact[m],
                mc[m]
            );
        }
    }

    #[test]
    fn lt_mc_curve_is_plausible() {
        let k = 64;
        let n = 256;
        let cdf = lt_reassembly_mc(k, n, LtParams::default(), 200, 9);
        assert_eq!(cdf.len(), n + 1);
        assert!((cdf[n] - 1.0).abs() < 1e-9, "planned graphs always decode");
        assert_eq!(cdf[k - 1], 0.0, "cannot decode below K blocks");
        let mean = mean_blocks_needed(&cdf);
        assert!(
            (k as f64) < mean && mean < 2.2 * k as f64,
            "LT mean blocks needed {mean}"
        );
    }

    #[test]
    fn mean_blocks_needed_of_step_function() {
        // CDF jumping to 1 at index 3 means exactly 3 blocks needed.
        let cdf = [0.0, 0.0, 0.0, 1.0, 1.0];
        assert!((mean_blocks_needed(&cdf) - 3.0).abs() < 1e-12);
    }
}
