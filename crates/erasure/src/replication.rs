//! Plain replication as a degenerate erasure code.
//!
//! RRAID-S and RRAID-A (the paper's baselines, §6.2.1) replicate plain-text
//! blocks. Replication is trivially decodable — each coded block *is* an
//! original — but asymmetric: completion needs at least one copy of *every*
//! original, and random arrivals pay the coupon-collector cost K·ln K that
//! §5.2.1 derives. This module provides the layout math and the collector
//! analysis used in Figures 1-1/4-1 and the scheme simulations.

use crate::{Block, CodingError};

/// A replication "code": K originals copied `replicas` times, N = K·replicas.
#[derive(Debug, Clone, Copy)]
pub struct Replication {
    k: usize,
    replicas: usize,
}

impl Replication {
    /// K originals, each stored `replicas ≥ 1` times.
    pub fn new(k: usize, replicas: usize) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        if replicas == 0 {
            return Err(CodingError::InvalidParameters(
                "replica count must be positive".into(),
            ));
        }
        Ok(Replication { k, replicas })
    }

    /// Number of original blocks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Copies of each original.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total stored blocks N = K·replicas.
    pub fn n(&self) -> usize {
        self.k * self.replicas
    }

    /// Which original does stored block `j` hold? Copy `r` of original `i`
    /// is stored at index `r·K + i`.
    pub fn original_of(&self, j: usize) -> usize {
        assert!(j < self.n(), "stored index out of range");
        j % self.k
    }

    /// "Encode": emit all N copies in replica-major order.
    pub fn encode(&self, data: &[Block]) -> Result<Vec<Block>, CodingError> {
        if data.len() != self.k {
            return Err(CodingError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let mut out = Vec::with_capacity(self.n());
        for _ in 0..self.replicas {
            out.extend(data.iter().cloned());
        }
        Ok(out)
    }

    /// Decode from `(stored_index, block)` pairs: needs ≥ 1 copy of every
    /// original.
    pub fn decode(&self, received: &[(usize, Block)]) -> Result<Vec<Block>, CodingError> {
        let mut slots: Vec<Option<Block>> = vec![None; self.k];
        let mut have = 0usize;
        for (j, b) in received {
            if *j >= self.n() {
                return Err(CodingError::InvalidBlockIndex(*j));
            }
            let i = self.original_of(*j);
            if slots[i].is_none() {
                slots[i] = Some(b.clone());
                have += 1;
            }
        }
        if have < self.k {
            return Err(CodingError::DecodeFailed);
        }
        Ok(slots.into_iter().map(|b| b.expect("have == k")).collect())
    }
}

/// Tracks which originals are covered as replicated blocks arrive — the
/// replication analogue of [`crate::SymbolDecoder`], used by the RRAID
/// scheme simulations to detect access completion.
#[derive(Debug, Clone)]
pub struct CoverageTracker {
    covered: Vec<bool>,
    remaining: usize,
    received: usize,
}

impl CoverageTracker {
    /// Tracker over K originals.
    pub fn new(k: usize) -> Self {
        CoverageTracker {
            covered: vec![false; k],
            remaining: k,
            received: 0,
        }
    }

    /// Record the arrival of a copy of `original`. Returns `true` once
    /// every original has at least one copy.
    pub fn receive(&mut self, original: usize) -> bool {
        self.received += 1;
        if !self.covered[original] {
            self.covered[original] = true;
            self.remaining -= 1;
        }
        self.is_complete()
    }

    /// True when every original is covered.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// Whether `original` has arrived.
    pub fn is_covered(&self, original: usize) -> bool {
        self.covered[original]
    }

    /// Originals still missing.
    pub fn missing(&self) -> usize {
        self.remaining
    }

    /// Total arrivals recorded (including duplicate copies).
    pub fn received(&self) -> usize {
        self.received
    }
}

/// Expected blocks drawn (with replacement, uniformly over originals) to
/// cover all K originals: the coupon-collector bound K·H(K) ≈ K·ln K that
/// §5.2.1 charges against replication.
pub fn coupon_collector_expectation(k: usize) -> f64 {
    let harmonic: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
    k as f64 * harmonic
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i + j) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_layout_is_replica_major() {
        let r = Replication::new(3, 2).unwrap();
        let data = make_data(3, 4);
        let coded = r.encode(&data).unwrap();
        assert_eq!(coded.len(), 6);
        assert_eq!(coded[0], data[0]);
        assert_eq!(coded[3], data[0]);
        assert_eq!(r.original_of(0), 0);
        assert_eq!(r.original_of(3), 0);
        assert_eq!(r.original_of(5), 2);
    }

    #[test]
    fn decode_needs_every_original() {
        let r = Replication::new(3, 2).unwrap();
        let data = make_data(3, 4);
        let coded = r.encode(&data).unwrap();
        // Copies of originals 0 and 1 only — not decodable.
        let rx = vec![
            (0, coded[0].clone()),
            (4, coded[4].clone()),
            (3, coded[3].clone()),
        ];
        assert_eq!(r.decode(&rx), Err(CodingError::DecodeFailed));
        // Add original 2.
        let mut rx = rx;
        rx.push((2, coded[2].clone()));
        assert_eq!(r.decode(&rx).unwrap(), data);
    }

    #[test]
    fn coverage_tracker_completion() {
        let mut t = CoverageTracker::new(3);
        assert!(!t.receive(0));
        assert!(!t.receive(0)); // duplicate copy
        assert!(!t.receive(2));
        assert_eq!(t.missing(), 1);
        assert!(t.receive(1));
        assert!(t.is_complete());
        assert_eq!(t.received(), 4);
    }

    #[test]
    fn coupon_collector_matches_k_ln_k() {
        let k = 1024;
        let exact = coupon_collector_expectation(k);
        let approx = k as f64 * (k as f64).ln();
        // H(K) = ln K + γ + ..., so exact exceeds K ln K by ≈ γ·K.
        assert!(exact > approx);
        assert!(exact < approx + 0.6 * k as f64);
    }

    #[test]
    fn invalid_parameters() {
        assert!(Replication::new(0, 2).is_err());
        assert!(Replication::new(2, 0).is_err());
    }
}
