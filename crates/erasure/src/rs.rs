//! Reed–Solomon erasure codes over GF(2⁸).
//!
//! The paper's optimal-code baseline (§2.2.2, §5.2.1, Table 5-1): any K of
//! the N coded blocks reconstruct the data, but encode/decode cost is
//! quadratic in K, so coding bandwidth falls as 1/K — the property Table
//! 5-1 measures and that rules Reed–Solomon out for RobuSTore's long code
//! words.
//!
//! Construction: a systematic-free (non-systematic) Vandermonde code, as in
//! the paper's description ("data symbols are the coefficients of a
//! polynomial … evaluated at numerous points"): coded block *j* is the
//! polynomial with the K data blocks as coefficients, evaluated at field
//! element α(j). Decoding solves the K×K Vandermonde system for any K
//! received evaluations by Gaussian elimination over GF(2⁸), then applies
//! the inverse row-by-row to the block data.

use crate::kernels::{gf, gf_axpy, gf_axpy_multi, gf_scale};
use crate::{xor_into, Block, CodingError};

/// A Reed–Solomon erasure code with parameters (K, N), N ≤ 255.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
}

impl ReedSolomon {
    /// Create a code transforming K data blocks into N coded blocks.
    ///
    /// Requires `0 < K ≤ N ≤ 255` (the field has 255 nonzero evaluation
    /// points; the paper notes "most Reed-Solomon code implementations use
    /// K < 255" for exactly this reason).
    pub fn new(k: usize, n: usize) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        if n < k {
            return Err(CodingError::InvalidParameters(format!(
                "N ({n}) must be at least K ({k})"
            )));
        }
        if n > 255 {
            return Err(CodingError::InvalidParameters(format!(
                "N ({n}) exceeds the GF(256) limit of 255"
            )));
        }
        Ok(ReedSolomon { k, n })
    }

    /// Number of data blocks per segment.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of coded blocks produced.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Evaluation point for coded block `j`: α^j for generator α.
    #[inline]
    fn point(j: usize) -> u8 {
        gf::tables().exp[j]
    }

    /// Encode K equal-length data blocks into N coded blocks.
    ///
    /// Coded block j is Σᵢ dataᵢ · point(j)ⁱ evaluated per byte (Horner's
    /// rule over blocks).
    pub fn encode(&self, data: &[Block]) -> Result<Vec<Block>, CodingError> {
        if data.len() != self.k {
            return Err(CodingError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        let mut out = Vec::with_capacity(self.n);
        for j in 0..self.n {
            let x = Self::point(j);
            // Horner: acc = ((d[k-1]·x + d[k-2])·x + ...)·x + d[0]
            let mut acc = data[self.k - 1].clone();
            for block in data[..self.k - 1].iter().rev() {
                gf_scale(&mut acc, x);
                xor_into(&mut acc, block);
            }
            out.push(acc);
        }
        Ok(out)
    }

    /// Decode from any K received `(coded_index, block)` pairs.
    ///
    /// Returns the K original data blocks. Extra blocks beyond K are
    /// ignored (any K suffice — the optimal-code property).
    pub fn decode(&self, received: &[(usize, Block)]) -> Result<Vec<Block>, CodingError> {
        if received.len() < self.k {
            return Err(CodingError::NotEnoughBlocks {
                got: received.len(),
                need: self.k,
            });
        }
        let mut seen = vec![false; self.n];
        let use_blocks = &received[..self.k];
        for (idx, _) in use_blocks {
            if *idx >= self.n {
                return Err(CodingError::InvalidBlockIndex(*idx));
            }
            if seen[*idx] {
                return Err(CodingError::DuplicateBlockIndex(*idx));
            }
            seen[*idx] = true;
        }
        let len = use_blocks[0].1.len();
        if use_blocks.iter().any(|(_, b)| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }

        // Build the K×K Vandermonde system V·coeffs = received and invert it.
        let mut mat = vec![0u8; self.k * self.k];
        for (r, (idx, _)) in use_blocks.iter().enumerate() {
            let x = Self::point(*idx);
            let mut p = 1u8;
            for c in 0..self.k {
                mat[r * self.k + c] = p;
                p = gf::mul(p, x);
            }
        }
        let inv = invert_matrix(&mut mat, self.k).ok_or(CodingError::DecodeFailed)?;

        // data_i = Σ_r inv[i][r] · received_r, per byte. The whole row is
        // handed to the fused kernel so the vector path makes one pass
        // over the destination instead of K.
        let mut out = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let mut acc = vec![0u8; len];
            let row: Vec<(u8, &[u8])> = use_blocks
                .iter()
                .enumerate()
                .map(|(r, (_, block))| (inv[i * self.k + r], block.as_slice()))
                .filter(|&(coef, _)| coef != 0)
                .collect();
            gf_axpy_multi(&mut acc, &row);
            out.push(acc);
        }
        Ok(out)
    }
}

/// Disjoint mutable/shared views of rows `r` and `c` of a row-major k×k
/// matrix, so elimination row ops can run through the block kernels.
fn row_pair(m: &mut [u8], k: usize, r: usize, c: usize) -> (&mut [u8], &[u8]) {
    debug_assert_ne!(r, c, "row op needs two distinct rows");
    if r < c {
        let (head, tail) = m.split_at_mut(c * k);
        (&mut head[r * k..(r + 1) * k], &tail[..k])
    } else {
        let (head, tail) = m.split_at_mut(r * k);
        (&mut tail[..k], &head[c * k..(c + 1) * k])
    }
}

/// Invert a k×k matrix over GF(256) by Gauss–Jordan elimination.
/// Consumes `mat` as scratch. Returns row-major inverse, or `None` if
/// singular (cannot happen for distinct Vandermonde points, but defended).
/// Row scaling and elimination run on the shared [`crate::kernels`] ops —
/// rows are tiny next to blocks, but one code path means one oracle.
fn invert_matrix(mat: &mut [u8], k: usize) -> Option<Vec<u8>> {
    let mut inv = vec![0u8; k * k];
    for i in 0..k {
        inv[i * k + i] = 1;
    }
    for col in 0..k {
        // Find pivot.
        let pivot = (col..k).find(|&r| mat[r * k + col] != 0)?;
        if pivot != col {
            for c in 0..k {
                mat.swap(pivot * k + c, col * k + c);
                inv.swap(pivot * k + c, col * k + c);
            }
        }
        let pinv = gf::inv(mat[col * k + col]);
        gf_scale(&mut mat[col * k..(col + 1) * k], pinv);
        gf_scale(&mut inv[col * k..(col + 1) * k], pinv);
        for r in 0..k {
            if r == col {
                continue;
            }
            let factor = mat[r * k + col];
            if factor == 0 {
                continue;
            }
            let (row_r, row_c) = row_pair(mat, k, r, col);
            gf_axpy(row_r, factor, row_c);
            let (row_r, row_c) = row_pair(&mut inv, k, r, col);
            gf_axpy(row_r, factor, row_c);
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn gf_mul_properties() {
        // Distributivity and known values.
        assert_eq!(gf::mul(0, 37), 0);
        assert_eq!(gf::mul(1, 37), 37);
        assert_eq!(gf::mul(2, 0x80), 0x1B); // x·x⁷ = x⁸ ≡ 0x1B
        for a in 1..=255u8 {
            assert_eq!(gf::mul(a, gf::inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn roundtrip_exact_k() {
        let rs = ReedSolomon::new(8, 16).unwrap();
        let data = make_data(8, 64);
        let coded = rs.encode(&data).unwrap();
        assert_eq!(coded.len(), 16);
        // Decode from the *last* 8 coded blocks.
        let rx: Vec<_> = (8..16).map(|i| (i, coded[i].clone())).collect();
        let decoded = rs.decode(&rx).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn any_k_subset_decodes() {
        let rs = ReedSolomon::new(5, 12).unwrap();
        let data = make_data(5, 40);
        let coded = rs.encode(&data).unwrap();
        // Try several subsets, including scattered ones.
        for subset in [
            vec![0, 1, 2, 3, 4],
            vec![7, 8, 9, 10, 11],
            vec![0, 3, 6, 9, 11],
            vec![11, 0, 5, 2, 8],
        ] {
            let rx: Vec<_> = subset.iter().map(|&i| (i, coded[i].clone())).collect();
            assert_eq!(rs.decode(&rx).unwrap(), data, "subset {subset:?}");
        }
    }

    #[test]
    fn extra_blocks_are_ignored() {
        let rs = ReedSolomon::new(4, 8).unwrap();
        let data = make_data(4, 16);
        let coded = rs.encode(&data).unwrap();
        let rx: Vec<_> = (0..6).map(|i| (i, coded[i].clone())).collect();
        assert_eq!(rs.decode(&rx).unwrap(), data);
    }

    #[test]
    fn too_few_blocks_errors() {
        let rs = ReedSolomon::new(4, 8).unwrap();
        let data = make_data(4, 16);
        let coded = rs.encode(&data).unwrap();
        let rx: Vec<_> = (0..3).map(|i| (i, coded[i].clone())).collect();
        assert_eq!(
            rs.decode(&rx),
            Err(CodingError::NotEnoughBlocks { got: 3, need: 4 })
        );
    }

    #[test]
    fn duplicate_index_errors() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let data = make_data(2, 8);
        let coded = rs.encode(&data).unwrap();
        let rx = vec![(1, coded[1].clone()), (1, coded[1].clone())];
        assert_eq!(rs.decode(&rx), Err(CodingError::DuplicateBlockIndex(1)));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(100, 256).is_err());
        assert!(ReedSolomon::new(255, 255).is_ok());
    }

    #[test]
    fn invalid_index_rejected() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let rx = vec![(0, vec![0u8; 4]), (9, vec![0u8; 4])];
        assert_eq!(rs.decode(&rx), Err(CodingError::InvalidBlockIndex(9)));
    }

    #[test]
    fn unequal_lengths_rejected() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let rx = vec![(0, vec![0u8; 4]), (1, vec![0u8; 5])];
        assert_eq!(rs.decode(&rx), Err(CodingError::UnequalBlockLengths));
        assert_eq!(
            rs.encode(&[vec![0u8; 4], vec![0u8; 5]]),
            Err(CodingError::UnequalBlockLengths)
        );
    }

    #[test]
    fn single_block_code() {
        // K=1 degenerates to replication of the single block at point⁰=1.
        let rs = ReedSolomon::new(1, 3).unwrap();
        let data = make_data(1, 10);
        let coded = rs.encode(&data).unwrap();
        for (i, block) in coded.iter().enumerate() {
            let decoded = rs.decode(&[(i, block.clone())]).unwrap();
            assert_eq!(decoded, data);
        }
    }
}
