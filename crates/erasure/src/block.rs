//! Block representation and XOR helpers.
//!
//! A *block* is the symbol unit of every code in this crate — in RobuSTore
//! deployments, 1 MB of data (§5.2.2 recommends K=128..1024 blocks per
//! segment). All LT coding work reduces to XOR over blocks, so the XOR
//! kernel is the throughput-critical path the paper optimises (§5.2.3
//! item 4: long operands, register- and cache-conscious loops). The actual
//! loops live in [`crate::kernels`], which provides both a wide vectorized
//! implementation and a byte-at-a-time scalar reference, selectable at
//! runtime with byte-identical results.

pub use crate::kernels::xor_into;

/// A data block: owned bytes of the segment's block size.
pub type Block = Vec<u8>;

/// Allocate a zero block of `len` bytes.
#[inline]
pub fn zero_block(len: usize) -> Block {
    vec![0u8; len]
}

/// XOR a set of blocks together into a fresh block.
///
/// Returns a zero block when `blocks` is empty (the XOR identity), sized by
/// `len`.
pub fn xor_all<'a>(blocks: impl IntoIterator<Item = &'a [u8]>, len: usize) -> Block {
    let mut acc = zero_block(len);
    for b in blocks {
        xor_into(&mut acc, b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let a: Block = (0..=255u8).collect();
        let b: Block = (0..=255u8).rev().collect();
        let mut c = a.clone();
        xor_into(&mut c, &b);
        xor_into(&mut c, &b);
        assert_eq!(c, a);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let a: Block = (0..100u8).collect();
        let mut c = a.clone();
        xor_into(&mut c, &a);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn xor_handles_non_multiple_of_eight() {
        for len in [0usize, 1, 7, 8, 9, 15, 17, 63, 100] {
            let a: Block = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let b: Block = (0..len).map(|i| (i * 13 + 1) as u8).collect();
            let mut c = a.clone();
            xor_into(&mut c, &b);
            let expect: Block = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(c, expect, "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn unequal_lengths_panic() {
        let mut a = vec![0u8; 8];
        xor_into(&mut a, &[0u8; 9]);
    }

    #[test]
    fn xor_all_empty_is_zero() {
        let z = xor_all(std::iter::empty(), 16);
        assert_eq!(z, vec![0u8; 16]);
    }

    #[test]
    fn xor_all_matches_fold() {
        let blocks: Vec<Block> = (0..5)
            .map(|i| (0..32).map(|j| ((i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let got = xor_all(blocks.iter().map(|b| b.as_slice()), 32);
        let mut expect = vec![0u8; 32];
        for b in &blocks {
            for (e, x) in expect.iter_mut().zip(b) {
                *e ^= x;
            }
        }
        assert_eq!(got, expect);
    }
}
