//! Single-parity codes (RAID-5 style).
//!
//! The simplest erasure code (§2.2.2): K data blocks plus one XOR parity
//! block, tolerating the loss of any single block. Included as the
//! optimal-code lower bound on redundancy and because the RAID-5 layout the
//! paper depicts (Figure 2-2) uses exactly this code per stripe. Parity
//! generation and reconstruction run on the shared wide-XOR kernel
//! ([`crate::kernels`]).

use crate::{xor_into, Block, CodingError};

/// A (K+1, K) single-parity code.
#[derive(Debug, Clone, Copy)]
pub struct ParityCode {
    k: usize,
}

impl ParityCode {
    /// A parity code over K data blocks.
    pub fn new(k: usize) -> Result<Self, CodingError> {
        if k == 0 {
            return Err(CodingError::InvalidParameters("K must be positive".into()));
        }
        Ok(ParityCode { k })
    }

    /// Number of data blocks per stripe.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total blocks per stripe (K data + 1 parity).
    pub fn n(&self) -> usize {
        self.k + 1
    }

    /// Encode: returns the K data blocks followed by the parity block.
    pub fn encode(&self, data: &[Block]) -> Result<Vec<Block>, CodingError> {
        if data.len() != self.k {
            return Err(CodingError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|b| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        let mut parity = vec![0u8; len];
        for b in data {
            xor_into(&mut parity, b);
        }
        let mut out = data.to_vec();
        out.push(parity);
        Ok(out)
    }

    /// Decode from any K of the K+1 stripe blocks (`index` K is the
    /// parity). Returns the K data blocks.
    pub fn decode(&self, received: &[(usize, Block)]) -> Result<Vec<Block>, CodingError> {
        if received.len() < self.k {
            return Err(CodingError::NotEnoughBlocks {
                got: received.len(),
                need: self.k,
            });
        }
        let len = received[0].1.len();
        if received.iter().any(|(_, b)| b.len() != len) {
            return Err(CodingError::UnequalBlockLengths);
        }
        let mut slots: Vec<Option<&Block>> = vec![None; self.k + 1];
        for (i, b) in received {
            if *i > self.k {
                return Err(CodingError::InvalidBlockIndex(*i));
            }
            if slots[*i].is_some() {
                return Err(CodingError::DuplicateBlockIndex(*i));
            }
            slots[*i] = Some(b);
        }
        let missing: Vec<usize> = (0..self.k).filter(|&i| slots[i].is_none()).collect();
        match missing.len() {
            0 => Ok((0..self.k).map(|i| slots[i].unwrap().clone()).collect()),
            1 if slots[self.k].is_some() => {
                // Reconstruct the missing data block as the XOR of parity
                // and the present data blocks.
                let gap = missing[0];
                let mut rec = slots[self.k].unwrap().clone();
                for (i, slot) in slots.iter().take(self.k).enumerate() {
                    if i != gap {
                        xor_into(&mut rec, slot.expect("only `gap` is missing"));
                    }
                }
                Ok((0..self.k)
                    .map(|i| {
                        if i == gap {
                            rec.clone()
                        } else {
                            slots[i].unwrap().clone()
                        }
                    })
                    .collect())
            }
            _ => Err(CodingError::DecodeFailed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(k: usize, len: usize) -> Vec<Block> {
        (0..k)
            .map(|i| (0..len).map(|j| ((i * 7 + j) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn roundtrip_without_loss() {
        let pc = ParityCode::new(4).unwrap();
        let data = make_data(4, 16);
        let coded = pc.encode(&data).unwrap();
        assert_eq!(coded.len(), 5);
        let rx: Vec<_> = (0..4).map(|i| (i, coded[i].clone())).collect();
        assert_eq!(pc.decode(&rx).unwrap(), data);
    }

    #[test]
    fn recovers_any_single_data_block() {
        let pc = ParityCode::new(5).unwrap();
        let data = make_data(5, 8);
        let coded = pc.encode(&data).unwrap();
        for lost in 0..5 {
            let rx: Vec<_> = (0..6)
                .filter(|&i| i != lost)
                .map(|i| (i, coded[i].clone()))
                .collect();
            assert_eq!(pc.decode(&rx).unwrap(), data, "lost block {lost}");
        }
    }

    #[test]
    fn two_losses_fail() {
        let pc = ParityCode::new(4).unwrap();
        let data = make_data(4, 8);
        let coded = pc.encode(&data).unwrap();
        let rx: Vec<_> = [2usize, 3, 4]
            .iter()
            .map(|&i| (i, coded[i].clone()))
            .collect();
        assert_eq!(
            pc.decode(&rx),
            Err(CodingError::NotEnoughBlocks { got: 3, need: 4 })
        );
        // Enough blocks but two *data* blocks missing and parity present:
        let pc2 = ParityCode::new(3).unwrap();
        let data2 = make_data(3, 8);
        let coded2 = pc2.encode(&data2).unwrap();
        let rx2 = vec![
            (0, coded2[0].clone()),
            (3, coded2[3].clone()),
            (3, coded2[3].clone()),
        ];
        assert_eq!(pc2.decode(&rx2), Err(CodingError::DuplicateBlockIndex(3)));
    }

    #[test]
    fn parity_is_xor_of_data() {
        let pc = ParityCode::new(3).unwrap();
        let data = make_data(3, 4);
        let coded = pc.encode(&data).unwrap();
        let expect: Vec<u8> = (0..4)
            .map(|j| data[0][j] ^ data[1][j] ^ data[2][j])
            .collect();
        assert_eq!(coded[3], expect);
    }
}
