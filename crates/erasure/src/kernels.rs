//! Hot-loop coding kernels: GF(256) multiply-accumulate, wide XOR, and
//! block-buffer pooling.
//!
//! Every code in this crate bottoms out in two inner loops — `acc ^= src`
//! (LT/Raptor/Tornado/parity) and `acc ^= coef · src` over GF(2⁸)
//! (Reed–Solomon) — so this module is the single substrate they all share.
//! The paper makes coding bandwidth a first-class constraint (§5.2.3
//! item 4: "long operands, register- and cache-conscious loops"; Table 5-1
//! rules RS out for long code words because its per-byte field math halves
//! bandwidth with every K doubling). Two implementations exist for each
//! kernel:
//!
//! * **Scalar reference** — the textbook byte-at-a-time loops (log/exp
//!   table lookups for GF, single-byte XOR). These pin the semantics: the
//!   vectorized kernels must be *byte-identical* to them for every input,
//!   a guarantee enforced by differential property tests. They double as
//!   the ablation baseline mirroring the paper's pre-optimisation loops —
//!   [`std::hint::black_box`] keeps the XOR reference genuinely
//!   byte-at-a-time so the compiler cannot quietly vectorize the baseline
//!   and erase the very effect §5.2.3 measures.
//! * **Vectorized** — wide loops over 32-byte chunks (4 × `u64` lanes)
//!   that LLVM lowers to SIMD. The GF multiply is table-driven in the
//!   ISA-L style: per coefficient, two 16-entry split-nibble tables
//!   ([`NibbleTables`], `c·b = lo[b & 15] ^ hi[b >> 4]`) are expanded
//!   once into a 256-entry product table that stays L1-resident for the
//!   whole block, so the inner loop is one branch-free lookup per byte
//!   with the XOR into the destination done on full `u64` lanes. That
//!   keeps per-byte work to a single independent load (the lookups of a
//!   chunk pipeline in parallel), versus the scalar reference's
//!   zero-check branch plus *two dependent* log/exp lookups per byte.
//!
//! Alignment note: the wide loops read/write through
//! `u64::from_ne_bytes`/`to_ne_bytes` on exact 32-byte chunks, which LLVM
//! merges into full-width vector loads. On x86-64 and aarch64 the
//! unaligned forms run at aligned speed when the data is aligned (and
//! `Vec<u8>` allocations are), so a separately-dispatched aligned path
//! would only duplicate code without a measurable win — and would need
//! `unsafe` reinterpretation this crate otherwise avoids.
//!
//! Which implementation runs is a process-wide runtime choice
//! ([`set_kernel`]) so benchmarks can measure both in one run; because the
//! kernels agree byte-for-byte, the selection can never change what any
//! experiment computes — only how fast.
//!
//! [`BlockPool`] rounds out the memory-discipline side: a free-list of
//! equal-sized blocks with allocation counters, so per-trial segment
//! buffers are recycled across a request loop instead of reallocated, and
//! tests can assert that a decode path performed no hidden copies.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};

use crate::Block;

/// GF(2⁸) arithmetic with the AES polynomial x⁸+x⁴+x³+x+1 (0x11B).
pub mod gf {
    /// Exponential table: EXP[i] = g^i for generator g = 0x03, doubled to
    /// avoid a modulo in `mul`.
    pub struct Tables {
        /// g^i for i in 0..510 (duplicated past 255 so `mul` skips a mod).
        pub exp: [u8; 512],
        /// Discrete log base g of each nonzero field element.
        pub log: [u16; 256],
    }

    /// Build the log/exp tables at first use.
    pub fn tables() -> &'static Tables {
        use std::sync::OnceLock;
        static TABLES: OnceLock<Tables> = OnceLock::new();
        TABLES.get_or_init(|| {
            let mut exp = [0u8; 512];
            let mut log = [0u16; 256];
            let mut x: u16 = 1;
            for (i, e) in exp.iter_mut().enumerate().take(255) {
                *e = x as u8;
                log[x as usize] = i as u16;
                // multiply by generator 0x03 = x + 1: x*3 = x*2 ^ x
                let x2 = x << 1;
                let x2 = if x2 & 0x100 != 0 { x2 ^ 0x11B } else { x2 };
                x = (x2 ^ x) & 0xFF;
            }
            for i in 255..512 {
                exp[i] = exp[i - 255];
            }
            Tables { exp, log }
        })
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        let t = tables();
        t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero, which has no inverse.
    #[inline]
    pub fn inv(a: u8) -> u8 {
        assert_ne!(a, 0, "inverse of zero in GF(256)");
        let t = tables();
        t.exp[255 - t.log[a as usize] as usize]
    }

    /// Field addition (= subtraction = XOR).
    #[inline]
    pub fn add(a: u8, b: u8) -> u8 {
        a ^ b
    }
}

/// Which kernel implementation the dispatching entry points run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Byte-at-a-time reference loops (differential-test oracle and
    /// ablation baseline).
    Scalar,
    /// Wide 32-byte-chunk loops (the default).
    Vector,
    /// Hardware-shuffle split-nibble kernels (`simd` feature): SSSE3/AVX2
    /// `PSHUFB` on x86_64, NEON `TBL` on aarch64. Selectable only when the
    /// feature is compiled in *and* the CPU probe succeeds; otherwise
    /// [`set_kernel`] falls back to [`Kernel::Vector`]. Byte-identical to
    /// the other tiers either way.
    Simd,
}

/// 0 = Vector (default), 1 = Scalar, 2 = Simd.
static ACTIVE_KERNEL: AtomicU8 = AtomicU8::new(0);

/// Whether the hardware-shuffle kernels can run on this build + host.
/// `false` when the crate is built without the `simd` feature or the CPU
/// probe finds no usable instruction set.
pub fn simd_available() -> bool {
    #[cfg(feature = "simd")]
    {
        crate::simd::available()
    }
    #[cfg(not(feature = "simd"))]
    {
        false
    }
}

/// Select the kernel implementation process-wide. Results are
/// byte-identical either way; only throughput changes. Requesting
/// [`Kernel::Simd`] on a build or host that cannot run it selects
/// [`Kernel::Vector`] instead (check [`simd_available`] to know which).
pub fn set_kernel(kernel: Kernel) {
    let v = match kernel {
        Kernel::Vector => 0,
        Kernel::Scalar => 1,
        Kernel::Simd if simd_available() => 2,
        Kernel::Simd => 0,
    };
    ACTIVE_KERNEL.store(v, Ordering::Relaxed);
}

/// The currently selected kernel implementation.
#[inline]
pub fn active_kernel() -> Kernel {
    match ACTIVE_KERNEL.load(Ordering::Relaxed) {
        0 => Kernel::Vector,
        2 => Kernel::Simd,
        _ => Kernel::Scalar,
    }
}

/// Per-coefficient split-nibble multiply tables (ISA-L layout): for a
/// fixed coefficient `c`, `c·b = lo[b & 15] ^ hi[b >> 4]` because
/// b = (b & 0x0F) ⊕ (b & 0xF0) and multiplication distributes over ⊕.
/// 32 bytes per coefficient — they live in registers/L1 for a whole block.
pub struct NibbleTables {
    /// Products of the coefficient with 0x00..=0x0F.
    pub lo: [u8; 16],
    /// Products of the coefficient with 0x00, 0x10, .., 0xF0.
    pub hi: [u8; 16],
}

impl NibbleTables {
    /// Build the two 16-entry tables for coefficient `c`.
    pub fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for i in 0..16u8 {
            lo[i as usize] = gf::mul(c, i);
            hi[i as usize] = gf::mul(c, i << 4);
        }
        NibbleTables { lo, hi }
    }

    /// Multiply `b` by the tables' coefficient.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.lo[(b & 0x0F) as usize] ^ self.hi[(b >> 4) as usize]
    }

    /// Expand into the full 256-entry product table the wide loops index
    /// by whole bytes: `expand()[b] = c·b`. 256 bytes per coefficient —
    /// L1-resident for the duration of a block operation.
    pub fn expand(&self) -> [u8; 256] {
        let mut full = [0u8; 256];
        for (b, e) in full.iter_mut().enumerate() {
            *e = self.lo[b & 0x0F] ^ self.hi[b >> 4];
        }
        full
    }
}

#[inline(always)]
fn load4(chunk: &[u8]) -> [u64; 4] {
    [
        u64::from_ne_bytes(chunk[0..8].try_into().unwrap()),
        u64::from_ne_bytes(chunk[8..16].try_into().unwrap()),
        u64::from_ne_bytes(chunk[16..24].try_into().unwrap()),
        u64::from_ne_bytes(chunk[24..32].try_into().unwrap()),
    ]
}

#[inline(always)]
fn store4(chunk: &mut [u8], w: [u64; 4]) {
    chunk[0..8].copy_from_slice(&w[0].to_ne_bytes());
    chunk[8..16].copy_from_slice(&w[1].to_ne_bytes());
    chunk[16..24].copy_from_slice(&w[2].to_ne_bytes());
    chunk[24..32].copy_from_slice(&w[3].to_ne_bytes());
}

/// The product `coef · src` of one 8-byte group through the expanded
/// split-nibble table, assembled in little-endian byte order (byte `i` of
/// the group lands in bits `8i..8i+8`, matching `u64::from_le_bytes` on
/// the destination). The 8 lookups carry no inter-dependencies, so they
/// pipeline — and assembling in registers avoids the store-forwarding
/// round trip a staging byte array would cost.
#[inline(always)]
fn mul8(w: u64, full: &[u8; 256]) -> u64 {
    // The group arrives as one u64 load; bytes are extracted with shifts
    // (ALU work) rather than eight extra byte-loads, halving load-port
    // pressure — the table lookups are then the only loads. Assembly is
    // tree-shaped: three OR levels instead of a serial chain of eight.
    let at = |i: u32| full[(w >> (8 * i)) as u8 as usize] as u64;
    let p0 = at(0) | at(1) << 8;
    let p1 = at(2) << 16 | at(3) << 24;
    let p2 = at(4) << 32 | at(5) << 40;
    let p3 = at(6) << 48 | at(7) << 56;
    (p0 | p1) | (p2 | p3)
}

// ---------------------------------------------------------------------------
// XOR kernels
// ---------------------------------------------------------------------------

/// XOR `src` into `dst` element-wise, using the selected kernel.
///
/// # Panics
/// Panics if the slices differ in length — codes operate on equal-sized
/// blocks only, and a mismatch indicates corruption upstream.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    match active_kernel() {
        Kernel::Vector => xor_into_wide(dst, src),
        Kernel::Scalar => xor_into_scalar(dst, src),
        #[cfg(feature = "simd")]
        Kernel::Simd => crate::simd::xor_into_simd(dst, src),
        #[cfg(not(feature = "simd"))]
        Kernel::Simd => xor_into_wide(dst, src),
    }
}

/// Byte-at-a-time XOR reference. `black_box` pins the loop to genuinely
/// scalar execution (see module docs); use only as an oracle/baseline.
pub fn xor_into_scalar(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor of blocks with unequal lengths");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = std::hint::black_box(*d ^ s);
    }
}

/// Wide XOR: 32-byte chunks (4 × u64), then an 8-byte loop, then bytes.
pub fn xor_into_wide(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor of blocks with unequal lengths");
    let mut d = dst.chunks_exact_mut(32);
    let mut s = src.chunks_exact(32);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let a = load4(dw);
        let b = load4(sw);
        store4(dw, [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]);
    }
    let dr = d.into_remainder();
    let sr = s.remainder();
    let mut d8 = dr.chunks_exact_mut(8);
    let mut s8 = sr.chunks_exact(8);
    for (dw, sw) in (&mut d8).zip(&mut s8) {
        let x =
            u64::from_ne_bytes(dw.try_into().unwrap()) ^ u64::from_ne_bytes(sw.try_into().unwrap());
        dw.copy_from_slice(&x.to_ne_bytes());
    }
    for (db, sb) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *db ^= *sb;
    }
}

// ---------------------------------------------------------------------------
// GF(256) multiply-accumulate / scale kernels
// ---------------------------------------------------------------------------

/// `acc ^= coef · src` over GF(2⁸), element-wise, using the selected
/// kernel.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn gf_axpy(acc: &mut [u8], coef: u8, src: &[u8]) {
    match active_kernel() {
        Kernel::Vector => gf_axpy_vector(acc, coef, src),
        Kernel::Scalar => gf_axpy_scalar(acc, coef, src),
        #[cfg(feature = "simd")]
        Kernel::Simd => crate::simd::gf_axpy_simd(acc, coef, src),
        #[cfg(not(feature = "simd"))]
        Kernel::Simd => gf_axpy_vector(acc, coef, src),
    }
}

/// Scalar reference multiply-accumulate: a branch plus two dependent
/// table lookups per byte (the loop Table 5-1's RS numbers come from).
pub fn gf_axpy_scalar(acc: &mut [u8], coef: u8, src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "axpy over blocks of unequal lengths");
    if coef == 0 {
        return;
    }
    if coef == 1 {
        xor_into_scalar(acc, src);
        return;
    }
    let t = gf::tables();
    let lc = t.log[coef as usize] as usize;
    for (a, &s) in acc.iter_mut().zip(src) {
        if s != 0 {
            *a ^= t.exp[t.log[s as usize] as usize + lc];
        }
    }
}

/// Vectorized multiply-accumulate: expanded split-nibble table over
/// 32-byte chunks, per-byte table lookups on the tail.
pub fn gf_axpy_vector(acc: &mut [u8], coef: u8, src: &[u8]) {
    assert_eq!(acc.len(), src.len(), "axpy over blocks of unequal lengths");
    if coef == 0 {
        return;
    }
    if coef == 1 {
        xor_into_wide(acc, src);
        return;
    }
    if acc.len() >= PAIR_TABLE_MIN_LEN {
        gf_axpy_pair_table(acc, coef, src);
        return;
    }
    let full = NibbleTables::new(coef).expand();
    // Two independent 8-byte groups per iteration keep 16 lookups in
    // flight at once.
    let mut d = acc.chunks_exact_mut(16);
    let mut s = src.chunks_exact(16);
    for (dg, sg) in (&mut d).zip(&mut s) {
        let x0 = u64::from_le_bytes(dg[0..8].try_into().unwrap())
            ^ mul8(u64::from_le_bytes(sg[0..8].try_into().unwrap()), &full);
        let x1 = u64::from_le_bytes(dg[8..16].try_into().unwrap())
            ^ mul8(u64::from_le_bytes(sg[8..16].try_into().unwrap()), &full);
        dg[0..8].copy_from_slice(&x0.to_le_bytes());
        dg[8..16].copy_from_slice(&x1.to_le_bytes());
    }
    let dr = d.into_remainder();
    let sr = s.remainder();
    let mut d8 = dr.chunks_exact_mut(8);
    let mut s8 = sr.chunks_exact(8);
    for (dg, sg) in (&mut d8).zip(&mut s8) {
        let x = u64::from_le_bytes(dg.as_ref().try_into().unwrap())
            ^ mul8(u64::from_le_bytes(sg.try_into().unwrap()), &full);
        dg.copy_from_slice(&x.to_le_bytes());
    }
    for (a, &sb) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *a ^= full[sb as usize];
    }
}

/// Block length above which the per-coefficient byte-pair table pays for
/// itself. Building the 64 Ki-entry table costs a fixed ~64 Ki stores;
/// past this length the halved lookup count wins it back.
const PAIR_TABLE_MIN_LEN: usize = 1 << 15;

/// Multiply-accumulate over a 65 536-entry byte-*pair* product table:
/// `t2[hi·256+lo] = (coef·hi) << 8 | coef·lo`. One 16-bit lookup covers
/// two source bytes, so an 8-byte group needs four table loads instead of
/// eight — the lookup stream is what saturates the load ports, so this is
/// the lever that matters on big blocks. The table is boxed as a
/// fixed-size array so `u16`-cast indices provably need no bounds checks.
fn gf_axpy_pair_table(acc: &mut [u8], coef: u8, src: &[u8]) {
    /// Per-thread pair-table cache. `built_for` records which coefficient
    /// the table currently holds (`None` until the first build), and is
    /// only set *after* the 64 Ki-entry fill completes — so a caller can
    /// never observe a partially initialized table: either `built_for`
    /// matches and the table is complete, or it doesn't and the table is
    /// rebuilt from scratch. Each worker thread owns its table outright
    /// (`thread_local!`), so the parallel encode/trial paths cannot race
    /// on it by construction; the concurrent-init differential test in
    /// `tests/kernel_differential.rs` pins this.
    struct PairTable {
        built_for: Option<u8>,
        t2: Box<[u16; 65536]>,
    }
    // The table is thread-local, not per-call: at 128 KiB a fresh Vec sits
    // exactly at glibc's mmap threshold, and an mmap + page-fault + munmap
    // cycle per axpy call quietly dominates the decode. Caching the
    // coefficient it was built for also makes back-to-back calls with one
    // coefficient (RS row application, repeated bench reps) skip the
    // 64 Ki-store rebuild entirely.
    thread_local! {
        static PAIR_TABLE: std::cell::RefCell<PairTable> =
            std::cell::RefCell::new(PairTable {
                built_for: None,
                t2: vec![0u16; 65536].into_boxed_slice().try_into().unwrap(),
            });
    }
    let full = NibbleTables::new(coef).expand();
    PAIR_TABLE.with(|cell| {
        let mut guard = cell.borrow_mut();
        if guard.built_for != Some(coef) {
            guard.built_for = None; // invalidate while the fill is in progress
            let t2: &mut [u16; 65536] = &mut guard.t2;
            for hi in 0..256usize {
                let h = (full[hi] as u16) << 8;
                let base = hi << 8;
                for lo in 0..256usize {
                    t2[base | lo] = h | full[lo] as u16;
                }
            }
            guard.built_for = Some(coef);
        }
        let t2: &[u16; 65536] = &guard.t2;
        let mul8p = |w: u64, t2: &[u16; 65536]| -> u64 {
            let p0 = t2[w as u16 as usize] as u64;
            let p1 = (t2[(w >> 16) as u16 as usize] as u64) << 16;
            let p2 = (t2[(w >> 32) as u16 as usize] as u64) << 32;
            let p3 = (t2[(w >> 48) as u16 as usize] as u64) << 48;
            (p0 | p1) | (p2 | p3)
        };
        let mut d = acc.chunks_exact_mut(16);
        let mut s = src.chunks_exact(16);
        for (dg, sg) in (&mut d).zip(&mut s) {
            let x0 = u64::from_le_bytes(dg[0..8].try_into().unwrap())
                ^ mul8p(u64::from_le_bytes(sg[0..8].try_into().unwrap()), t2);
            let x1 = u64::from_le_bytes(dg[8..16].try_into().unwrap())
                ^ mul8p(u64::from_le_bytes(sg[8..16].try_into().unwrap()), t2);
            dg[0..8].copy_from_slice(&x0.to_le_bytes());
            dg[8..16].copy_from_slice(&x1.to_le_bytes());
        }
        let dr = d.into_remainder();
        let sr = s.remainder();
        let mut d8 = dr.chunks_exact_mut(8);
        let mut s8 = sr.chunks_exact(8);
        for (dg, sg) in (&mut d8).zip(&mut s8) {
            let x = u64::from_le_bytes(dg.as_ref().try_into().unwrap())
                ^ mul8p(u64::from_le_bytes(sg.try_into().unwrap()), t2);
            dg.copy_from_slice(&x.to_le_bytes());
        }
        for (a, &sb) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
            *a ^= full[sb as usize];
        }
    });
}

/// Fused multiply-accumulate of several sources into one destination:
/// `acc ^= Σᵢ coefᵢ · srcᵢ`, element-wise over GF(2⁸), using the selected
/// kernel. XOR accumulation is exact and order-free, so the result is
/// byte-identical to applying [`gf_axpy`] once per source — but the
/// vector path makes a *single* pass over `acc`, folding every source's
/// contribution into the destination group while it sits in a register.
/// For a K×K Reed–Solomon decode that cuts destination memory traffic by
/// a factor of K, which is where the per-source loop saturates.
///
/// # Panics
/// Panics if any source's length differs from `acc`'s.
pub fn gf_axpy_multi(acc: &mut [u8], srcs: &[(u8, &[u8])]) {
    match active_kernel() {
        Kernel::Vector => gf_axpy_multi_vector(acc, srcs),
        Kernel::Scalar => gf_axpy_multi_scalar(acc, srcs),
        #[cfg(feature = "simd")]
        Kernel::Simd => crate::simd::gf_axpy_multi_simd(acc, srcs),
        #[cfg(not(feature = "simd"))]
        Kernel::Simd => gf_axpy_multi_vector(acc, srcs),
    }
}

/// Scalar reference for the fused multiply-accumulate: the sources
/// applied one at a time with the byte-at-a-time loop — exactly the
/// structure the pre-kernel decoder had.
pub fn gf_axpy_multi_scalar(acc: &mut [u8], srcs: &[(u8, &[u8])]) {
    for &(coef, src) in srcs {
        gf_axpy_scalar(acc, coef, src);
    }
}

/// Vectorized fused multiply-accumulate: sources are folded in four at a
/// time by [`gf_axpy_quad`] (a fixed-arity loop the compiler can strip of
/// bounds checks, with four independent lookup chains in flight), so the
/// destination is traversed once per four sources instead of once per
/// source.
pub fn gf_axpy_multi_vector(acc: &mut [u8], srcs: &[(u8, &[u8])]) {
    for &(_, src) in srcs {
        assert_eq!(acc.len(), src.len(), "axpy over blocks of unequal lengths");
    }
    // Zero coefficients contribute nothing; drop them before building
    // tables so the hot loops only visit live sources.
    let live: Vec<(u8, &[u8])> = srcs.iter().filter(|&&(c, _)| c != 0).copied().collect();
    if acc.len() >= PAIR_TABLE_MIN_LEN {
        // Long blocks: the byte-pair-table path is load-port-limited and
        // gains nothing from fusion — run it per source.
        for &(coef, src) in &live {
            gf_axpy_vector(acc, coef, src);
        }
        return;
    }
    let mut quads = live.chunks_exact(4);
    for quad in &mut quads {
        let tables = [
            NibbleTables::new(quad[0].0).expand(),
            NibbleTables::new(quad[1].0).expand(),
            NibbleTables::new(quad[2].0).expand(),
            NibbleTables::new(quad[3].0).expand(),
        ];
        gf_axpy_quad(acc, &tables, [quad[0].1, quad[1].1, quad[2].1, quad[3].1]);
    }
    for &(coef, src) in quads.remainder() {
        gf_axpy_vector(acc, coef, src);
    }
}

/// Fold exactly four sources into `acc` in a single pass. All slices must
/// share `acc`'s length (checked by the caller).
fn gf_axpy_quad(acc: &mut [u8], tables: &[[u8; 256]; 4], srcs: [&[u8]; 4]) {
    let mut d = acc.chunks_exact_mut(8);
    let mut c0 = srcs[0].chunks_exact(8);
    let mut c1 = srcs[1].chunks_exact(8);
    let mut c2 = srcs[2].chunks_exact(8);
    let mut c3 = srcs[3].chunks_exact(8);
    for ((((dg, s0), s1), s2), s3) in (&mut d).zip(&mut c0).zip(&mut c1).zip(&mut c2).zip(&mut c3) {
        let x = u64::from_le_bytes(dg.as_ref().try_into().unwrap())
            ^ mul8(u64::from_le_bytes(s0.try_into().unwrap()), &tables[0])
            ^ mul8(u64::from_le_bytes(s1.try_into().unwrap()), &tables[1])
            ^ mul8(u64::from_le_bytes(s2.try_into().unwrap()), &tables[2])
            ^ mul8(u64::from_le_bytes(s3.try_into().unwrap()), &tables[3]);
        dg.copy_from_slice(&x.to_le_bytes());
    }
    for ((((a, &b0), &b1), &b2), &b3) in d
        .into_remainder()
        .iter_mut()
        .zip(c0.remainder())
        .zip(c1.remainder())
        .zip(c2.remainder())
        .zip(c3.remainder())
    {
        *a ^= tables[0][b0 as usize]
            ^ tables[1][b1 as usize]
            ^ tables[2][b2 as usize]
            ^ tables[3][b3 as usize];
    }
}

/// In-place multiply of every byte of `block` by field scalar `x`, using
/// the selected kernel.
#[inline]
pub fn gf_scale(block: &mut [u8], x: u8) {
    match active_kernel() {
        Kernel::Vector => gf_scale_vector(block, x),
        Kernel::Scalar => gf_scale_scalar(block, x),
        #[cfg(feature = "simd")]
        Kernel::Simd => crate::simd::gf_scale_simd(block, x),
        #[cfg(not(feature = "simd"))]
        Kernel::Simd => gf_scale_vector(block, x),
    }
}

/// Scalar reference in-place scale.
pub fn gf_scale_scalar(block: &mut [u8], x: u8) {
    if x == 1 {
        return;
    }
    if x == 0 {
        block.fill(0);
        return;
    }
    let t = gf::tables();
    let lx = t.log[x as usize] as usize;
    for b in block.iter_mut() {
        if *b != 0 {
            *b = t.exp[t.log[*b as usize] as usize + lx];
        }
    }
}

/// Vectorized in-place scale: expanded split-nibble table over 32-byte
/// chunks, per-byte table lookups on the tail.
pub fn gf_scale_vector(block: &mut [u8], x: u8) {
    if x == 1 {
        return;
    }
    if x == 0 {
        block.fill(0);
        return;
    }
    let full = NibbleTables::new(x).expand();
    let mut d = block.chunks_exact_mut(8);
    for dg in &mut d {
        let x = mul8(u64::from_le_bytes(dg.as_ref().try_into().unwrap()), &full);
        dg.copy_from_slice(&x.to_le_bytes());
    }
    for b in d.into_remainder().iter_mut() {
        *b = full[*b as usize];
    }
}

// ---------------------------------------------------------------------------
// Block pooling
// ---------------------------------------------------------------------------

/// Free-list of equal-sized blocks, so a request loop recycles its segment
/// buffers instead of reallocating them every trial.
///
/// The counters make memory discipline testable: after a warm-up pass,
/// a loop that truly recycles shows `fresh_allocations()` frozen while
/// `reuses()` climbs, and a decode path that secretly copied blocks would
/// need allocations the pool never saw. `outstanding_blocks()` tracks
/// checked-out-minus-returned, so a completed access can assert it leaked
/// nothing.
///
/// Threading model: the free list needs `&mut self`, so a pool is owned
/// by exactly one thread at a time — the parallel encode/trial paths give
/// each worker its *own* pool and [`BlockPool::absorb`] merges the
/// workers' free lists and counters back into a parent afterwards. The
/// counters themselves are atomic ([`AtomicU64`]/[`AtomicI64`]), so the
/// accounting stays exact across the absorb (no read-modify-write races
/// on shared references) and read-only probes work through `&self` even
/// while another handle's counters are being merged in.
#[derive(Debug, Default)]
pub struct BlockPool {
    block_len: usize,
    free: Vec<Block>,
    fresh: AtomicU64,
    reused: AtomicU64,
    /// Blocks checked out minus blocks returned. Signed: adopting a
    /// foreign buffer via [`BlockPool::put`] counts as a return without a
    /// checkout, which is legitimate (the read path adopts the decoder's
    /// buffers) and must not wrap.
    outstanding: AtomicI64,
}

impl BlockPool {
    /// A pool of `block_len`-byte blocks.
    pub fn new(block_len: usize) -> Self {
        BlockPool {
            block_len,
            free: Vec::new(),
            fresh: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            outstanding: AtomicI64::new(0),
        }
    }

    /// The block size this pool serves.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// A zeroed block, recycled from the free list when possible.
    pub fn get(&mut self) -> Block {
        let mut b = self.get_scratch();
        b.fill(0);
        b
    }

    /// A block with unspecified contents — for callers that overwrite it
    /// entirely (e.g. reading from a backend), skipping the memset.
    pub fn get_scratch(&mut self) -> Block {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        match self.free.pop() {
            Some(b) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                vec![0u8; self.block_len]
            }
        }
    }

    /// Return a block to the free list.
    ///
    /// # Panics
    /// Panics if the block's length does not match the pool's.
    pub fn put(&mut self, block: Block) {
        assert_eq!(block.len(), self.block_len, "pooled block length mismatch");
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free.push(block);
    }

    /// Return every block of an iterator to the free list.
    pub fn put_all(&mut self, blocks: impl IntoIterator<Item = Block>) {
        for b in blocks {
            self.put(b);
        }
    }

    /// Account `blocks` checked-out buffers whose *ownership moved* to an
    /// external consumer (e.g. a storage backend that keeps the
    /// allocation as the stored block): outstanding drops as if they had
    /// been returned, but the buffers never rejoin the free list. This is
    /// what lets a zero-copy write path assert
    /// [`BlockPool::outstanding_blocks`]` == 0` after every outcome —
    /// a buffer is either back in a pool or durably owned elsewhere,
    /// never in limbo.
    pub fn mark_consumed(&self, blocks: u64) {
        self.outstanding.fetch_sub(blocks as i64, Ordering::Relaxed);
    }

    /// Merge another pool (typically a per-worker pool from a parallel
    /// section) into this one: its free blocks join this free list and
    /// its counters fold in, so system-wide accounting stays exact no
    /// matter how many workers allocated.
    ///
    /// # Panics
    /// Panics if the pools serve different block sizes.
    pub fn absorb(&mut self, other: BlockPool) {
        assert_eq!(
            other.block_len, self.block_len,
            "absorbing a pool of a different block size"
        );
        self.free.extend(other.free);
        self.fresh
            .fetch_add(other.fresh.load(Ordering::Relaxed), Ordering::Relaxed);
        self.reused
            .fetch_add(other.reused.load(Ordering::Relaxed), Ordering::Relaxed);
        self.outstanding
            .fetch_add(other.outstanding.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Blocks newly allocated (not served from the free list).
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Blocks served from the free list.
    pub fn reuses(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Total bytes this pool has ever allocated — the byte-allocation
    /// counter zero-copy tests assert against.
    pub fn allocated_bytes(&self) -> u64 {
        self.fresh_allocations() * self.block_len as u64
    }

    /// Blocks checked out and not yet returned (negative if the pool
    /// adopted more foreign buffers than it handed out). A completed
    /// access that recycles everything leaves this at zero.
    pub fn outstanding_blocks(&self) -> i64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Bytes checked out and not yet returned — zero at the end of a
    /// leak-free access.
    pub fn outstanding_bytes(&self) -> i64 {
        self.outstanding_blocks() * self.block_len as i64
    }

    /// Blocks currently idle in the free list.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive check of the chunk product against the log/exp tables:
    /// every (coefficient, byte) pair, via a 32-byte chunk.
    #[test]
    fn chunk_product_matches_tables_exhaustively() {
        for c in 0..=255u8 {
            if c < 2 {
                continue; // axpy special-cases 0 and 1 before the table path
            }
            let full = NibbleTables::new(c).expand();
            for b0 in 0..=255u8 {
                let bytes = mul8(u64::from_le_bytes([b0; 8]), &full).to_le_bytes();
                let expect = gf::mul(c, b0);
                assert!(
                    bytes.iter().all(|&x| x == expect),
                    "c={c} b={b0}: got {:#x}, want {expect:#x}",
                    bytes[0]
                );
            }
        }
    }

    #[test]
    fn nibble_tables_match_mul() {
        for c in [0u8, 1, 2, 3, 0x53, 0x80, 0xFF] {
            let nt = NibbleTables::new(c);
            for b in 0..=255u8 {
                assert_eq!(nt.mul(b), gf::mul(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn kernel_selection_round_trips() {
        assert_eq!(active_kernel(), Kernel::Vector);
        set_kernel(Kernel::Scalar);
        assert_eq!(active_kernel(), Kernel::Scalar);
        set_kernel(Kernel::Vector);
        assert_eq!(active_kernel(), Kernel::Vector);
    }

    #[test]
    fn simd_selection_respects_availability() {
        // Requesting Simd either activates it (feature + CPU support) or
        // falls back to Vector — never anything else, and never a panic.
        set_kernel(Kernel::Simd);
        let got = active_kernel();
        if simd_available() {
            assert_eq!(got, Kernel::Simd);
        } else {
            assert_eq!(got, Kernel::Vector);
        }
        set_kernel(Kernel::Vector);
    }

    #[test]
    fn axpy_vector_handles_tails_and_special_coefficients() {
        for len in [0usize, 1, 7, 8, 31, 32, 33, 40, 63, 64, 100] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            for coef in [0u8, 1, 2, 0x1D, 0xFF] {
                let mut a: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
                let mut b = a.clone();
                gf_axpy_vector(&mut a, coef, &src);
                gf_axpy_scalar(&mut b, coef, &src);
                assert_eq!(a, b, "len={len} coef={coef}");
            }
        }
    }

    #[test]
    fn scale_vector_matches_scalar() {
        for len in [0usize, 5, 31, 32, 33, 96, 129] {
            let init: Vec<u8> = (0..len).map(|i| (i * 29 + 1) as u8).collect();
            for x in [0u8, 1, 2, 0x35, 0xFE] {
                let mut a = init.clone();
                let mut b = init.clone();
                gf_scale_vector(&mut a, x);
                gf_scale_scalar(&mut b, x);
                assert_eq!(a, b, "len={len} x={x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unequal lengths")]
    fn wide_xor_rejects_unequal_lengths() {
        let mut a = vec![0u8; 8];
        xor_into_wide(&mut a, &[0u8; 9]);
    }

    #[test]
    fn pool_recycles_and_counts() {
        let mut pool = BlockPool::new(16);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.fresh_allocations(), 2);
        assert_eq!(pool.allocated_bytes(), 32);
        assert_eq!(pool.outstanding_blocks(), 2);
        assert_eq!(pool.outstanding_bytes(), 32);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.outstanding_blocks(), 0);
        let c = pool.get();
        assert!(
            c.iter().all(|&x| x == 0),
            "recycled blocks come back zeroed"
        );
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.fresh_allocations(), 2, "no fresh alloc on reuse");
        pool.put(c);
        pool.put_all((0..2).map(|_| vec![0u8; 16]));
        assert_eq!(pool.available(), 4);
        // Adopting foreign buffers counts as returns without checkouts.
        assert_eq!(pool.outstanding_blocks(), -2);
    }

    #[test]
    fn pool_mark_consumed_accounts_ownership_transfer() {
        // A write path draws buffers and hands them to the backend for
        // keeps: outstanding must settle to zero without the buffers ever
        // coming back to the free list.
        let mut pool = BlockPool::new(16);
        let a = pool.get_scratch();
        let b = pool.get_scratch();
        assert_eq!(pool.outstanding_blocks(), 2);
        drop((a, b)); // ownership notionally moved to the backend
        pool.mark_consumed(2);
        assert_eq!(pool.outstanding_blocks(), 0);
        assert_eq!(pool.available(), 0, "consumed buffers never rejoin");
    }

    #[test]
    fn pool_absorb_merges_blocks_and_counters() {
        let mut parent = BlockPool::new(8);
        let p = parent.get();
        let mut worker = BlockPool::new(8);
        let w1 = worker.get_scratch();
        let w2 = worker.get_scratch();
        worker.put(w1);
        worker.put(w2);
        let w3 = worker.get(); // reuse
        worker.put(w3);
        parent.absorb(worker);
        assert_eq!(parent.fresh_allocations(), 3, "1 parent + 2 worker");
        assert_eq!(parent.reuses(), 1);
        assert_eq!(parent.available(), 2, "worker's free list joins");
        assert_eq!(parent.outstanding_blocks(), 1, "only `p` is still out");
        parent.put(p);
        assert_eq!(parent.outstanding_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "different block size")]
    fn pool_absorb_rejects_size_mismatch() {
        BlockPool::new(8).absorb(BlockPool::new(16));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pool_rejects_foreign_sizes() {
        BlockPool::new(8).put(vec![0u8; 9]);
    }
}
