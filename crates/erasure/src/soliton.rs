//! Soliton degree distributions for LT codes.
//!
//! LT encoding draws each coded block's degree from the *robust Soliton
//! distribution* μ(d) (Luby 2002; paper §2.2.3). The distribution is
//! parameterised by `c` (the paper's C) and `δ`:
//!
//! ```text
//! R    = c · ln(k/δ) · √k
//! ρ(1) = 1/k,   ρ(i) = 1/(i(i−1))            for i = 2..k
//! τ(i) = R/(i·k)                             for i = 1 .. k/R − 1
//! τ(k/R) = R·ln(R/δ)/k,   τ(i) = 0           beyond
//! μ(i) = (ρ(i) + τ(i)) / β,  β = Σ(ρ+τ)
//! ```
//!
//! Larger `c` biases toward low-degree blocks (cheaper XOR, higher
//! reception overhead); smaller `δ` adds high-degree coverage (lower
//! overhead, more CPU). Figures 5-1/5-2 sweep exactly these knobs.

use rand::RngCore;
use robustore_simkit::rng::uniform01;

/// The robust Soliton distribution over degrees 1..=k.
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    k: usize,
    c: f64,
    delta: f64,
    /// Cumulative distribution; `cdf[i]` = P(degree ≤ i+1).
    cdf: Vec<f64>,
    /// Expected degree E[d].
    mean_degree: f64,
}

impl RobustSoliton {
    /// Build the distribution for word length `k` with parameters `c > 0`
    /// and `0 < delta < 1`.
    ///
    /// # Panics
    /// Panics on out-of-range parameters; these are programming errors, not
    /// runtime conditions.
    pub fn new(k: usize, c: f64, delta: f64) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(c > 0.0, "c must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");

        let kf = k as f64;
        let r = c * (kf / delta).ln() * kf.sqrt();
        // Spike position k/R. Luby's analysis assumes R < k; for small k
        // (R ≥ k) the floor would land the spike on degree 1, dumping the
        // whole τ mass — several times β — onto bare replicas. A code
        // that is ~85% degree-1 blocks is near-replication: losing a
        // small fraction of coded blocks then routinely erases every
        // cover of some original (rank loss no decoder can fix). Keep
        // the spike at degree ≥ 2 so small-k codes stay genuinely
        // erasure-coded; distributions with a natural spike ≥ 2 are
        // untouched.
        let spike = ((kf / r).floor() as usize).clamp(2.min(k), k);

        let mut pdf = vec![0.0f64; k];
        // ρ
        pdf[0] += 1.0 / kf;
        for i in 2..=k {
            pdf[i - 1] += 1.0 / (i as f64 * (i as f64 - 1.0));
        }
        // τ (only meaningful when R < k, i.e. spike > 1; for tiny k the
        // whole τ mass lands on the spike)
        if spike >= 1 {
            for i in 1..spike {
                pdf[i - 1] += r / (i as f64 * kf);
            }
            let tail = (r / delta).ln().max(0.0) * r / kf;
            pdf[spike - 1] += tail;
        }

        let beta: f64 = pdf.iter().sum();
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        let mut mean = 0.0;
        for (i, p) in pdf.iter().enumerate() {
            let pn = p / beta;
            acc += pn;
            mean += (i + 1) as f64 * pn;
            cdf.push(acc);
        }
        // Force exact 1.0 at the end so sampling can never fall off.
        *cdf.last_mut().expect("k >= 1") = 1.0;

        RobustSoliton {
            k,
            c,
            delta,
            cdf,
            mean_degree: mean,
        }
    }

    /// Word length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parameter c.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Parameter δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Expected degree of a coded block, E\[d\].
    pub fn mean_degree(&self) -> f64 {
        self.mean_degree
    }

    /// Probability mass at degree `d` (1-based).
    pub fn pmf(&self, d: usize) -> f64 {
        assert!((1..=self.k).contains(&d), "degree out of range");
        let lo = if d == 1 { 0.0 } else { self.cdf[d - 2] };
        self.cdf[d - 1] - lo
    }

    /// Sample a degree in 1..=k.
    pub fn sample(&self, rng: &mut impl RngCore) -> usize {
        let u = uniform01(rng);
        // Binary search the CDF for the first entry ≥ u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustore_simkit::SeedSequence;

    #[test]
    fn pmf_sums_to_one() {
        for (k, c, d) in [
            (16, 0.5, 0.5),
            (128, 1.0, 0.1),
            (1024, 1.0, 0.5),
            (1024, 2.0, 0.01),
        ] {
            let rs = RobustSoliton::new(k, c, d);
            let total: f64 = (1..=k).map(|i| rs.pmf(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k} c={c} d={d}: {total}");
        }
    }

    #[test]
    fn degree_one_mass_is_substantial() {
        // The ripple needs degree-1 blocks to start; the robust spike at
        // d=1 is τ(1)=R/k plus ρ(1)=1/k, which is well above 1/k alone.
        let rs = RobustSoliton::new(1024, 1.0, 0.5);
        assert!(rs.pmf(1) > 1.0 / 1024.0 * 5.0);
    }

    #[test]
    fn mean_degree_tracks_ln_k() {
        // E[d] grows like ln k — the near-optimal property (§5.2.2).
        let small = RobustSoliton::new(64, 1.0, 0.5).mean_degree();
        let large = RobustSoliton::new(4096, 1.0, 0.5).mean_degree();
        assert!(large > small);
        assert!(large < 5.0 * small, "mean degree should grow slowly");
        // Typical LT configuration has mean degree in the single digits
        // ("average encoded-node degree is about five", §4.1.1).
        let typical = RobustSoliton::new(1024, 1.1, 0.5).mean_degree();
        assert!(
            (2.0..12.0).contains(&typical),
            "typical mean degree {typical}"
        );
    }

    #[test]
    fn sampling_matches_pmf() {
        let rs = RobustSoliton::new(128, 1.0, 0.1);
        let mut rng = SeedSequence::new(3).fork("soliton", 0);
        let n = 200_000usize;
        let mut counts = vec![0usize; 129];
        for _ in 0..n {
            let d = rs.sample(&mut rng);
            assert!((1..=128).contains(&d));
            counts[d] += 1;
        }
        // Compare the head of the distribution (where mass concentrates).
        for (d, &count) in counts.iter().enumerate().skip(1).take(8) {
            let emp = count as f64 / n as f64;
            let theo = rs.pmf(d);
            assert!(
                (emp - theo).abs() < 0.01 + theo * 0.1,
                "d={d}: empirical {emp:.4} vs pmf {theo:.4}"
            );
        }
    }

    #[test]
    fn sample_always_in_range_even_at_tails() {
        let rs = RobustSoliton::new(4, 2.0, 0.9);
        let mut rng = SeedSequence::new(5).fork("soliton", 1);
        for _ in 0..10_000 {
            let d = rs.sample(&mut rng);
            assert!((1..=4).contains(&d));
        }
    }

    #[test]
    fn small_k_does_not_degenerate_to_replication() {
        // R ≥ k for these shapes: without the spike ≥ 2 guard the τ mass
        // lands on degree 1 and ~85% of coded blocks are bare copies.
        for (k, delta) in [(30usize, 0.1f64), (64, 0.1), (128, 0.1), (30, 0.5)] {
            let rs = RobustSoliton::new(k, 1.0, delta);
            assert!(
                rs.pmf(1) < 0.5,
                "k={k} δ={delta}: degree-1 mass {:.2} — replication-like",
                rs.pmf(1)
            );
            assert!(
                rs.mean_degree() >= 1.8,
                "k={k} δ={delta}: mean {:.2}",
                rs.mean_degree()
            );
            // The ripple still has a starting population.
            assert!(rs.pmf(1) > 0.01, "k={k} δ={delta}: no degree-1 mass at all");
        }
    }

    #[test]
    fn k_equals_one_degenerates() {
        let rs = RobustSoliton::new(1, 1.0, 0.5);
        let mut rng = SeedSequence::new(7).fork("soliton", 2);
        assert_eq!(rs.sample(&mut rng), 1);
        assert!((rs.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        RobustSoliton::new(8, 1.0, 1.5);
    }
}
