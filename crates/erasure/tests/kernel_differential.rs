//! Differential tests pinning the vector kernels to the scalar reference.
//!
//! The acceptance bar for the SWAR/nibble-table kernels is *bit identity*
//! with the byte-at-a-time reference on randomized inputs — coefficients,
//! lengths (including tails that are not multiples of 8 or 32), and
//! alignments (slices taken at arbitrary offsets into larger buffers).
//! Well over 1000 randomized cases run across the suite; every one is
//! seeded and therefore reproducible.

use rand::{Rng, RngCore};
use robustore_erasure::kernels::{
    gf_axpy_multi_scalar, gf_axpy_multi_vector, gf_axpy_scalar, gf_axpy_vector, gf_scale_scalar,
    gf_scale_vector, xor_into_scalar, xor_into_wide,
};
use robustore_erasure::{set_kernel, Kernel, ReedSolomon};
use robustore_simkit::SeedSequence;

/// Case generator: a (dst, src, coefficient) triple where both operands
/// are unaligned slices of random length into larger random buffers.
struct Case {
    dst_buf: Vec<u8>,
    src_buf: Vec<u8>,
    dst_off: usize,
    src_off: usize,
    len: usize,
    coef: u8,
}

impl Case {
    fn random(rng: &mut impl Rng, round: usize) -> Case {
        // Cycle through length regimes so short tails, chunk boundaries,
        // and multi-chunk bodies all appear many times.
        let len: usize = match round % 4 {
            0 => rng.gen_range(0usize..40),     // tail-only and boundary
            1 => 32 * rng.gen_range(0usize..5), // exact chunk multiples
            2 => 32 * rng.gen_range(0usize..5) + rng.gen_range(1usize..32), // body+tail
            _ => rng.gen_range(0usize..600),    // anything
        };
        let dst_off = rng.gen_range(0..32);
        let src_off = rng.gen_range(0..32);
        let mut dst_buf = vec![0u8; dst_off + len];
        let mut src_buf = vec![0u8; src_off + len];
        rng.fill_bytes(&mut dst_buf);
        rng.fill_bytes(&mut src_buf);
        Case {
            dst_buf,
            src_buf,
            dst_off,
            src_off,
            len,
            coef: rng.gen(),
        }
    }

    fn dst(&self) -> Vec<u8> {
        self.dst_buf[self.dst_off..].to_vec()
    }

    fn src(&self) -> &[u8] {
        &self.src_buf[self.src_off..]
    }
}

#[test]
fn axpy_vector_matches_scalar_on_500_random_cases() {
    let mut rng = SeedSequence::new(0xA1).fork("axpy", 0);
    for round in 0..500 {
        let case = Case::random(&mut rng, round);
        let mut a = case.dst();
        let mut b = case.dst();
        gf_axpy_vector(&mut a, case.coef, case.src());
        gf_axpy_scalar(&mut b, case.coef, case.src());
        assert_eq!(
            a, b,
            "round {round}: len={} coef={} offs=({},{})",
            case.len, case.coef, case.dst_off, case.src_off
        );
    }
}

#[test]
fn wide_xor_matches_scalar_on_300_random_cases() {
    let mut rng = SeedSequence::new(0xA2).fork("xor", 0);
    for round in 0..300 {
        let case = Case::random(&mut rng, round);
        let mut a = case.dst();
        let mut b = case.dst();
        xor_into_wide(&mut a, case.src());
        xor_into_scalar(&mut b, case.src());
        assert_eq!(
            a, b,
            "round {round}: len={} offs=({},{})",
            case.len, case.dst_off, case.src_off
        );
    }
}

/// The vector axpy switches to a byte-pair product table above a length
/// threshold; exercise lengths straddling it (including odd tails) so the
/// large-block path is pinned to the reference as well.
#[test]
fn axpy_pair_table_path_matches_scalar_on_40_large_cases() {
    let mut rng = SeedSequence::new(0xA6).fork("pair", 0);
    for round in 0..40 {
        let len = 32 * 1024 - 20 + rng.gen_range(0usize..64) + 1024 * rng.gen_range(0usize..3);
        let coef: u8 = rng.gen();
        let mut src = vec![0u8; len];
        let mut a = vec![0u8; len];
        rng.fill_bytes(&mut src);
        rng.fill_bytes(&mut a);
        let mut b = a.clone();
        gf_axpy_vector(&mut a, coef, &src);
        gf_axpy_scalar(&mut b, coef, &src);
        assert_eq!(a, b, "round {round}: len={len} coef={coef}");
    }
}

#[test]
fn fused_axpy_matches_scalar_on_300_random_cases() {
    let mut rng = SeedSequence::new(0xA5).fork("multi", 0);
    for round in 0..300 {
        let case = Case::random(&mut rng, round);
        // 0..6 extra sources beyond the case's own, same length, with
        // coefficients that include zeros (the fused path skips them).
        let extra: Vec<(u8, Vec<u8>)> = (0..rng.gen_range(0usize..6))
            .map(|_| {
                let mut s = vec![0u8; case.len];
                rng.fill_bytes(&mut s);
                (rng.gen::<u8>() & rng.gen::<u8>(), s)
            })
            .collect();
        let mut srcs: Vec<(u8, &[u8])> = vec![(case.coef, case.src())];
        srcs.extend(extra.iter().map(|(c, s)| (*c, s.as_slice())));
        let mut a = case.dst();
        let mut b = case.dst();
        gf_axpy_multi_vector(&mut a, &srcs);
        gf_axpy_multi_scalar(&mut b, &srcs);
        assert_eq!(
            a,
            b,
            "round {round}: len={} sources={} coef0={}",
            case.len,
            srcs.len(),
            case.coef
        );
    }
}

#[test]
fn scale_vector_matches_scalar_on_300_random_cases() {
    let mut rng = SeedSequence::new(0xA3).fork("scale", 0);
    for round in 0..300 {
        let case = Case::random(&mut rng, round);
        let mut a = case.dst();
        let mut b = case.dst();
        gf_scale_vector(&mut a, case.coef);
        gf_scale_scalar(&mut b, case.coef);
        assert_eq!(
            a, b,
            "round {round}: len={} coef={} off={}",
            case.len, case.coef, case.dst_off
        );
    }
}

/// The byte-pair product table is rebuilt lazily per thread and per
/// coefficient; many threads initializing it at once — with different
/// coefficients, over table-threshold lengths — must each still match the
/// scalar reference exactly. Regression for the table being observed
/// partially filled.
#[test]
fn pair_table_initializes_safely_under_concurrency() {
    let seq = SeedSequence::new(0xA7);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let seq = &seq;
            scope.spawn(move || {
                let mut rng = seq.fork("pair-concurrent", t);
                for round in 0..6 {
                    // Over the pair-table threshold, coef varies per round
                    // so the per-thread table is rebuilt repeatedly while
                    // sibling threads do the same.
                    let len = 32 * 1024 + rng.gen_range(0usize..100);
                    let coef: u8 = rng.gen_range(1..=255);
                    let mut src = vec![0u8; len];
                    let mut a = vec![0u8; len];
                    rng.fill_bytes(&mut src);
                    rng.fill_bytes(&mut a);
                    let mut b = a.clone();
                    gf_axpy_vector(&mut a, coef, &src);
                    gf_axpy_scalar(&mut b, coef, &src);
                    assert_eq!(a, b, "thread {t} round {round}: len={len} coef={coef}");
                }
            });
        }
    });
}

/// RS encode/decode round-trips under both kernels and the two kernels
/// produce byte-identical code words — the end-to-end check that the
/// kernel swap cannot change any experiment output.
#[test]
fn rs_roundtrip_is_kernel_invariant() {
    let mut rng = SeedSequence::new(0xA4).fork("rs", 0);
    for round in 0..40 {
        let k = rng.gen_range(1..12);
        let n = k + rng.gen_range(1..=k);
        let len = rng.gen_range(1..100);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect();
        let rs = ReedSolomon::new(k, n).unwrap();

        set_kernel(Kernel::Vector);
        let coded_v = rs.encode(&data).unwrap();
        set_kernel(Kernel::Scalar);
        let coded_s = rs.encode(&data).unwrap();
        assert_eq!(coded_v, coded_s, "round {round}: encodings diverge");

        // Decode from the last K blocks (all parity-heavy subsets work).
        let rx: Vec<_> = (n - k..n).map(|i| (i, coded_s[i].clone())).collect();
        let dec_s = rs.decode(&rx).unwrap();
        set_kernel(Kernel::Vector);
        let dec_v = rs.decode(&rx).unwrap();
        assert_eq!(dec_s, data, "round {round}: scalar round-trip");
        assert_eq!(dec_v, data, "round {round}: vector round-trip");
    }
    set_kernel(Kernel::Vector); // leave the process-global default in place
}

/// The same randomized case families, pinned against the hardware-shuffle
/// kernels. Compiled only with `--features simd`; each test additionally
/// no-ops (cleanly, loudly) when the host CPU lacks the instructions, so
/// the suite stays green everywhere while proving bit identity wherever
/// the simd path can actually run.
#[cfg(feature = "simd")]
mod simd_differential {
    use super::*;
    use robustore_erasure::simd::{
        self, gf_axpy_multi_simd, gf_axpy_multi_simd_at, gf_axpy_simd, gf_axpy_simd_at,
        gf_scale_simd, gf_scale_simd_at, tier_supported, xor_into_simd, xor_into_simd_at,
        SimdLevel,
    };

    /// Skip guard: `false` (with a note) on hosts without shuffle units.
    fn runnable() -> bool {
        if simd::available() {
            true
        } else {
            eprintln!("simd kernels unavailable on this CPU; differential cases skipped");
            false
        }
    }

    #[test]
    fn axpy_simd_matches_scalar_on_500_random_cases() {
        if !runnable() {
            return;
        }
        let mut rng = SeedSequence::new(0xA1).fork("axpy", 0); // same cases as the vector test
        for round in 0..500 {
            let case = Case::random(&mut rng, round);
            let mut a = case.dst();
            let mut b = case.dst();
            gf_axpy_simd(&mut a, case.coef, case.src());
            gf_axpy_scalar(&mut b, case.coef, case.src());
            assert_eq!(
                a, b,
                "round {round}: len={} coef={} offs=({},{})",
                case.len, case.coef, case.dst_off, case.src_off
            );
        }
    }

    #[test]
    fn xor_simd_matches_scalar_on_300_random_cases() {
        if !runnable() {
            return;
        }
        let mut rng = SeedSequence::new(0xA2).fork("xor", 0);
        for round in 0..300 {
            let case = Case::random(&mut rng, round);
            let mut a = case.dst();
            let mut b = case.dst();
            xor_into_simd(&mut a, case.src());
            xor_into_scalar(&mut b, case.src());
            assert_eq!(
                a, b,
                "round {round}: len={} offs=({},{})",
                case.len, case.dst_off, case.src_off
            );
        }
    }

    #[test]
    fn fused_axpy_simd_matches_scalar_on_300_random_cases() {
        if !runnable() {
            return;
        }
        let mut rng = SeedSequence::new(0xA5).fork("multi", 0);
        for round in 0..300 {
            let case = Case::random(&mut rng, round);
            let extra: Vec<(u8, Vec<u8>)> = (0..rng.gen_range(0usize..6))
                .map(|_| {
                    let mut s = vec![0u8; case.len];
                    rng.fill_bytes(&mut s);
                    (rng.gen::<u8>() & rng.gen::<u8>(), s)
                })
                .collect();
            let mut srcs: Vec<(u8, &[u8])> = vec![(case.coef, case.src())];
            srcs.extend(extra.iter().map(|(c, s)| (*c, s.as_slice())));
            let mut a = case.dst();
            let mut b = case.dst();
            gf_axpy_multi_simd(&mut a, &srcs);
            gf_axpy_multi_scalar(&mut b, &srcs);
            assert_eq!(
                a,
                b,
                "round {round}: len={} sources={}",
                case.len,
                srcs.len()
            );
        }
    }

    #[test]
    fn scale_simd_matches_scalar_on_300_random_cases() {
        if !runnable() {
            return;
        }
        let mut rng = SeedSequence::new(0xA3).fork("scale", 0);
        for round in 0..300 {
            let case = Case::random(&mut rng, round);
            let mut a = case.dst();
            let mut b = case.dst();
            gf_scale_simd(&mut a, case.coef);
            gf_scale_scalar(&mut b, case.coef);
            assert_eq!(
                a, b,
                "round {round}: len={} coef={} off={}",
                case.len, case.coef, case.dst_off
            );
        }
    }

    /// Every instruction tier the host supports — not just the probe's
    /// preferred one — pinned to the scalar reference on the same
    /// randomized case families, through the `*_at` entry points. On a
    /// GFNI/AVX-512VBMI host this exercises the true-field-multiply and
    /// 64-lane-permute kernels alongside AVX2 and SSSE3; tiers the CPU
    /// lacks are skipped with a note.
    #[test]
    fn every_supported_tier_matches_scalar_on_random_cases() {
        let tiers = [
            SimdLevel::Ssse3,
            SimdLevel::Avx2,
            SimdLevel::Avx512Vbmi,
            SimdLevel::Gfni,
            SimdLevel::Neon,
        ];
        for tier in tiers {
            if !tier_supported(tier) {
                eprintln!("tier {tier:?} unsupported on this CPU; cases skipped");
                continue;
            }
            let mut rng = SeedSequence::new(0xA9).fork("tiers", tier as u64);
            for round in 0..200 {
                let case = Case::random(&mut rng, round);
                let mut a = case.dst();
                let mut b = case.dst();
                gf_axpy_simd_at(tier, &mut a, case.coef, case.src());
                gf_axpy_scalar(&mut b, case.coef, case.src());
                assert_eq!(
                    a, b,
                    "{tier:?} axpy round {round}: len={} coef={} offs=({},{})",
                    case.len, case.coef, case.dst_off, case.src_off
                );

                xor_into_simd_at(tier, &mut a, case.src());
                xor_into_scalar(&mut b, case.src());
                assert_eq!(a, b, "{tier:?} xor round {round}: len={}", case.len);

                gf_scale_simd_at(tier, &mut a, case.coef);
                gf_scale_scalar(&mut b, case.coef);
                assert_eq!(
                    a, b,
                    "{tier:?} scale round {round}: len={} coef={}",
                    case.len, case.coef
                );

                let extra: Vec<(u8, Vec<u8>)> = (0..rng.gen_range(0usize..6))
                    .map(|_| {
                        let mut s = vec![0u8; case.len];
                        rng.fill_bytes(&mut s);
                        (rng.gen::<u8>() & rng.gen::<u8>(), s)
                    })
                    .collect();
                let mut srcs: Vec<(u8, &[u8])> = vec![(case.coef, case.src())];
                srcs.extend(extra.iter().map(|(c, s)| (*c, s.as_slice())));
                gf_axpy_multi_simd_at(tier, &mut a, &srcs);
                gf_axpy_multi_scalar(&mut b, &srcs);
                assert_eq!(
                    a,
                    b,
                    "{tier:?} multi round {round}: len={} sources={}",
                    case.len,
                    srcs.len()
                );
            }
        }
    }

    /// Large lengths through the dispatchers with `Kernel::Simd` active —
    /// covers the unrolled 64-byte main loops and their tails, plus the
    /// selection machinery itself.
    #[test]
    fn dispatched_simd_matches_scalar_on_large_unaligned_cases() {
        use robustore_erasure::kernels::{gf_axpy, gf_scale, xor_into};
        if !runnable() {
            return;
        }
        let mut rng = SeedSequence::new(0xA8).fork("large", 0);
        set_kernel(Kernel::Simd);
        for round in 0..40 {
            // 1–3 KiB bodies at every alignment, odd tails included.
            let len = rng.gen_range(1024usize..3072);
            let dst_off = rng.gen_range(0..64);
            let src_off = rng.gen_range(0..64);
            let coef: u8 = rng.gen();
            let mut dst_buf = vec![0u8; dst_off + len];
            let mut src_buf = vec![0u8; src_off + len];
            rng.fill_bytes(&mut dst_buf);
            rng.fill_bytes(&mut src_buf);
            let mut a = dst_buf[dst_off..].to_vec();
            let mut b = a.clone();
            let src = &src_buf[src_off..];

            gf_axpy(&mut a, coef, src);
            gf_axpy_scalar(&mut b, coef, src);
            assert_eq!(a, b, "axpy round {round}: len={len} coef={coef}");

            xor_into(&mut a, src);
            xor_into_scalar(&mut b, src);
            assert_eq!(a, b, "xor round {round}: len={len}");

            gf_scale(&mut a, coef);
            gf_scale_scalar(&mut b, coef);
            assert_eq!(a, b, "scale round {round}: len={len} coef={coef}");
        }
        set_kernel(Kernel::Vector); // restore the process-wide default
    }

    /// Full RS round-trip with the simd kernels selected, byte-compared to
    /// the scalar code words — the experiment-level invariance check.
    #[test]
    fn rs_roundtrip_is_simd_invariant() {
        if !runnable() {
            return;
        }
        let mut rng = SeedSequence::new(0xA4).fork("rs", 0); // same cases as the vector test
        for round in 0..40 {
            let k = rng.gen_range(1..12);
            let n = k + rng.gen_range(1..=k);
            let len = rng.gen_range(1..100);
            let data: Vec<Vec<u8>> = (0..k)
                .map(|_| (0..len).map(|_| rng.gen()).collect())
                .collect();
            let rs = ReedSolomon::new(k, n).unwrap();

            set_kernel(Kernel::Simd);
            let coded_simd = rs.encode(&data).unwrap();
            set_kernel(Kernel::Scalar);
            let coded_s = rs.encode(&data).unwrap();
            assert_eq!(coded_simd, coded_s, "round {round}: encodings diverge");

            let rx: Vec<_> = (n - k..n).map(|i| (i, coded_s[i].clone())).collect();
            let dec_s = rs.decode(&rx).unwrap();
            set_kernel(Kernel::Simd);
            let dec_simd = rs.decode(&rx).unwrap();
            assert_eq!(dec_s, data, "round {round}: scalar round-trip");
            assert_eq!(dec_simd, data, "round {round}: simd round-trip");
        }
        set_kernel(Kernel::Vector);
    }
}
