//! Property tests for the coding library.

use proptest::prelude::*;
use robustore_erasure::lt::{blocks_needed, LtCode};
use robustore_erasure::soliton::RobustSoliton;
use robustore_erasure::{xor_into, LtParams, ReedSolomon};
use robustore_simkit::SeedSequence;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// XOR is an involution and commutative on arbitrary buffers.
    #[test]
    fn xor_axioms(a in proptest::collection::vec(any::<u8>(), 0..200)) {
        let b: Vec<u8> = a.iter().map(|x| x.wrapping_mul(37).wrapping_add(11)).collect();
        let mut ab = a.clone();
        xor_into(&mut ab, &b);
        let mut ba = b.clone();
        xor_into(&mut ba, &a);
        prop_assert_eq!(&ab, &ba, "commutative");
        xor_into(&mut ab, &b);
        prop_assert_eq!(ab, a, "involution");
    }

    /// Every planned LT graph is decodable from its full block set and
    /// all neighbour lists are sorted, distinct, in-range.
    #[test]
    fn lt_plan_invariants(
        k in 1usize..96,
        extra_pct in 0usize..200,
        c in 0.1f64..2.5,
        delta in 0.01f64..0.9,
        seed in any::<u64>(),
    ) {
        let n = k + k * extra_pct / 100;
        let params = LtParams { c, delta, ..Default::default() };
        let code = LtCode::plan(k, n, params, seed).unwrap();
        prop_assert!(code.check_decodable());
        let mut covered = vec![false; k];
        for j in 0..n {
            let nb = code.neighbors(j);
            prop_assert!(!nb.is_empty());
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            for &i in nb {
                prop_assert!((i as usize) < k);
                covered[i as usize] = true;
            }
        }
        prop_assert!(covered.iter().all(|&c| c), "every original covered");
    }

    /// Reception overhead is never negative and a decodable prefix uses
    /// at least K blocks.
    #[test]
    fn lt_needs_at_least_k(k in 2usize..64, seed in any::<u64>()) {
        let code = LtCode::plan(k, 3 * k, LtParams::default(), seed).unwrap();
        let (needed, edges) = blocks_needed(&code, 0..code.n()).unwrap();
        prop_assert!(needed >= k);
        prop_assert!(edges >= k, "at least one edge per decoded original");
        prop_assert!(edges <= code.edge_count());
    }

    /// Robust Soliton: valid distribution for arbitrary parameters.
    #[test]
    fn soliton_is_a_distribution(
        k in 1usize..2048,
        c in 0.05f64..3.0,
        delta in 0.01f64..0.95,
    ) {
        let s = RobustSoliton::new(k, c, delta);
        let total: f64 = (1..=k).map(|d| s.pmf(d)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(s.mean_degree() >= 1.0);
        prop_assert!(s.mean_degree() <= k as f64);
    }

    /// Soliton sampling stays in range for arbitrary parameters.
    #[test]
    fn soliton_sampling_in_range(
        k in 1usize..512,
        c in 0.05f64..3.0,
        delta in 0.01f64..0.95,
        seed in any::<u64>(),
    ) {
        let s = RobustSoliton::new(k, c, delta);
        let mut rng = SeedSequence::new(seed).fork("s", 0);
        for _ in 0..200 {
            let d = s.sample(&mut rng);
            prop_assert!((1..=k).contains(&d));
        }
    }

    /// RS: decoding K arbitrary distinct blocks inverts encoding, and the
    /// decode is insensitive to the order the blocks are presented in.
    #[test]
    fn rs_order_insensitive(
        k in 1usize..9,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let n = 2 * k + 1;
        let rs = ReedSolomon::new(k, n).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((seed as usize + i * 31 + j) % 256) as u8).collect())
            .collect();
        let coded = rs.encode(&data).unwrap();
        let fwd: Vec<_> = (0..k).map(|i| (i + k, coded[i + k].clone())).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        prop_assert_eq!(rs.decode(&fwd).unwrap(), data.clone());
        prop_assert_eq!(rs.decode(&rev).unwrap(), data);
    }
}
