//! Chaos suite for the self-healing read path.
//!
//! Every test drives a real [`System`] through a [`ChaosBackend`] armed
//! with deterministic, seeded read faults ([`ReadFaultPlan`]) and asserts
//! the integrity contract of the read path:
//!
//! * **transient errors** are retried within the bounded budget and never
//!   cost data;
//! * **silent corruption** (flipped bytes, torn reads) is caught by
//!   checksum verification and demoted to a missing block the redundancy
//!   absorbs — the returned bytes are always correct or the read errors;
//! * **read-repair** re-encodes the damage from the decoded data and puts
//!   it back, so the next read finds a healthy file;
//! * the **scrubber** restores files to their full redundancy target
//!   before latent faults accumulate past decodability;
//! * every exit path — success, decode failure, hard I/O error — returns
//!   all buffers to the shared pool (`pool_outstanding_bytes() == 0`).

use robustore::core::{
    AccessMode, ChaosBackend, Client, FaultSwitch, InMemoryBackend, QosOptions, ReadReport,
    Scrubber, StoreError, System, SystemConfig,
};
use robustore::simkit::{ReadFaultPlan, ReadFaultScenario, SeedSequence};

const DISKS: usize = 8;

fn chaos_system() -> (System, FaultSwitch) {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect();
    let (backend, switch) = ChaosBackend::new(InMemoryBackend::new(speeds));
    let sys = System::with_backend(
        Box::new(backend),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 4,
            pipeline_depth: 8,
            // Blocking path pinned: this suite asserts *exact* injected
            // fault and retry counts against seeded budgets, and the ring
            // may service a few already-queued requests past the decode
            // point (legitimately consuming extra budget). Ring-mode
            // chaos semantics are covered by tests/ring_chaos.rs.
            io_ring: false,
            ..Default::default()
        },
    );
    (sys, switch)
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + salt as usize) % 256) as u8)
        .collect()
}

fn put(client: &Client, name: &str, data: &[u8]) {
    let mut h = client
        .open(name, AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, data).unwrap();
    client.close(h).unwrap();
}

fn read_with_report(sys: &System, client: &Client, name: &str) -> (Vec<u8>, ReadReport) {
    let h = client
        .open(name, AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let got = client.read_with_report(&h).unwrap();
    client.close(h).unwrap();
    assert_eq!(sys.pool_outstanding_bytes(), 0, "read leaked pool buffers");
    got
}

#[test]
fn transient_faults_are_retried_not_fatal() {
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(150_000, 1);
    put(&client, "flaky", &data);

    // Two disks hiccup for a couple of reads each — well within the
    // default 3-attempt budget, so no block is lost.
    switch.transient_reads(1, 2);
    switch.transient_reads(4, 2);
    let (got, rr) = read_with_report(&sys, &client, "flaky");
    assert_eq!(got, data);
    assert!(rr.transient_retries > 0, "retry policy never engaged");
    assert_eq!(rr.blocks_missing, 0, "transients within budget cost data");
    assert_eq!(rr.blocks_corrupt, 0);
    assert_eq!(switch.injected_read_faults().0, rr.transient_retries);
}

#[test]
fn exhausted_retries_demote_to_missing_and_read_survives() {
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(150_000, 2);
    put(&client, "stubborn", &data);

    // A large transient budget on one disk outlasts the 3-attempt policy
    // on every block it serves; redundancy absorbs the loss.
    switch.transient_reads(2, 1_000);
    let (got, rr) = read_with_report(&sys, &client, "stubborn");
    assert_eq!(got, data);
    assert!(
        rr.blocks_missing > 0,
        "spent budgets must demote to missing"
    );
    assert!(rr.transient_retries >= 2 * rr.blocks_missing as u64);
}

#[test]
fn corruption_is_detected_and_never_returned() {
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(200_000, 3);
    put(&client, "rotten", &data);

    // The next reads of two disks come back with a flipped byte; another
    // tears reads in half. Without checksums this read returns garbage.
    switch.corrupt_reads(0, 4);
    switch.corrupt_reads(5, 4);
    switch.torn_reads(6, 3);
    let (got, rr) = read_with_report(&sys, &client, "rotten");
    assert_eq!(got, data, "corrupt blocks reached the decoder");
    assert!(rr.blocks_corrupt > 0, "verification never fired");
    assert_eq!(rr.blocks_unverified, 0, "fresh writes are fully digested");
    let (_, corrupt, torn) = switch.injected_read_faults();
    assert!(corrupt > 0 && torn > 0);
}

#[test]
fn read_repair_restores_damage_for_the_next_read() {
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(200_000, 4);
    put(&client, "healme", &data);

    // Really destroy blocks at rest (not switch-injected): lose some and
    // rot some, on separate disks.
    let seq = SeedSequence::new(77);
    let lost = sys.lose_blocks(3, 0.6, &seq);
    let rotted = sys.corrupt_blocks(6, 0.6, &seq);
    assert!(!lost.is_empty() && !rotted.is_empty());

    let (got, rr) = read_with_report(&sys, &client, "healme");
    assert_eq!(got, data);
    assert!(
        rr.blocks_missing > 0 || rr.blocks_corrupt > 0,
        "damage was never observed"
    );
    assert!(rr.blocks_repaired > 0, "read-repair never engaged");

    // The next read finds a healthy file: repaired blocks are back in
    // place and verify (repair keeps the original checksums).
    let (again, rr2) = read_with_report(&sys, &client, "healme");
    assert_eq!(again, data);
    assert_eq!(rr2.blocks_missing, 0, "repair did not stick");
    assert_eq!(rr2.blocks_corrupt, 0);
    let _ = switch;
}

#[test]
fn scrubber_restores_full_redundancy_unscrubbed_store_decays() {
    // The headline robustness claim, in miniature: under repeated seeded
    // loss + bit rot, a scrubbed store keeps serving reads while an
    // identical unscrubbed control decays past decodability.
    let seq = SeedSequence::new(0xA5);
    let data = payload(180_000, 5);

    let run = |scrubbed: bool| -> (usize, usize) {
        // The control's self-healing is fully off (no scrubber AND no
        // read-repair): the read-repair audit restores the *entire*
        // damage set on any read that trips over damage, so a store
        // that merely keeps reading never decays — only a store with no
        // healer at all demonstrates the decay the scrubber prevents.
        let speeds: Vec<f64> = (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect();
        let (backend, _switch) = ChaosBackend::new(InMemoryBackend::new(speeds));
        let sys = System::with_backend(
            Box::new(backend),
            SystemConfig {
                block_bytes: 4 << 10,
                encode_threads: 4,
                pipeline_depth: 8,
                io_ring: false,
                read_repair: scrubbed,
                ..Default::default()
            },
        );
        let client = Client::connect(&sys, sys.register_user());
        put(&client, "wear", &data);
        let mut ok_rounds = 0;
        let mut failed_rounds = 0;
        for round in 0..6u64 {
            for disk in 0..DISKS {
                let sub = seq.subsequence("wear-round", round * DISKS as u64 + disk as u64);
                sys.lose_blocks(disk, 0.18, &sub);
                sys.corrupt_blocks(disk, 0.10, &sub);
            }
            if scrubbed {
                let sweep = Scrubber::new(&client).sweep();
                assert!(sweep.failed.is_empty(), "scrub failed: {:?}", sweep.failed);
            }
            let h = client
                .open("wear", AccessMode::Read, QosOptions::best_effort())
                .unwrap();
            match client.read(&h) {
                Ok(got) => {
                    assert_eq!(got, data, "a served read must be correct");
                    ok_rounds += 1;
                }
                Err(_) => failed_rounds += 1,
            }
            client.close(h).unwrap();
            assert_eq!(sys.pool_outstanding_bytes(), 0);
        }
        if scrubbed {
            // The sweep ends each round at the full redundancy target.
            let meta = sys.export_meta("wear").unwrap();
            assert_eq!(meta.stored_blocks(), meta.coding.n);
            assert_eq!(meta.checksums.len(), meta.coding.n);
        }
        (ok_rounds, failed_rounds)
    };

    let (scrub_ok, scrub_failed) = run(true);
    assert_eq!(scrub_ok, 6, "scrubbed store dropped reads");
    assert_eq!(scrub_failed, 0);
    let (_control_ok, control_failed) = run(false);
    assert!(
        control_failed > 0,
        "control never decayed — the fault load is too weak to prove scrubbing matters"
    );
}

#[test]
fn seeded_read_chaos_replays_bit_identically() {
    let run = |seed: u64| {
        let (sys, switch) = chaos_system();
        let client = Client::connect(&sys, sys.register_user());
        put(&client, "replay", &payload(160_000, 6));
        let plan = ReadFaultPlan::generate(
            &ReadFaultScenario::Mixed {
                transient: 2,
                corrupt: 2,
                torn: 1,
                reads: 3,
            },
            DISKS,
            &SeedSequence::new(seed),
        );
        switch.apply_read(&plan);
        let (got, rr) = read_with_report(&sys, &client, "replay");
        (got, format!("{rr:?}"), switch.injected_read_faults())
    };
    let a = run(99);
    let b = run(99);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let c = run(100);
    assert_eq!(a.0, c.0, "data is correct under any seed");
}

#[test]
fn hard_read_fault_aborts_without_leaking_pool_buffers() {
    // Regression: the old read path returned early on a hard error and
    // dropped the borrowed buffer pool on the floor, so every later read
    // re-allocated from scratch.
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(150_000, 7);
    put(&client, "leaky", &data);

    // Warm the pool with one clean read.
    let _ = read_with_report(&sys, &client, "leaky");
    let (fresh_before, _) = sys.pool_stats();

    // Fastest disk is consumed first by the arrival-order merge, so the
    // hard fault fires early with many buffers checked out.
    switch.fail_reads_hard(DISKS - 1);
    let h = client
        .open("leaky", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let err = client.read(&h).unwrap_err();
    assert!(matches!(err, StoreError::DiskFault { .. }), "{err:?}");
    client.close(h).unwrap();
    assert_eq!(
        sys.pool_outstanding_bytes(),
        0,
        "failed read leaked pool buffers"
    );
    switch.clear();

    // The warm pool survived the failure: a follow-up read allocates
    // nothing new.
    let (got, _) = read_with_report(&sys, &client, "leaky");
    assert_eq!(got, data);
    let (fresh_after, reuses) = sys.pool_stats();
    assert_eq!(
        fresh_after, fresh_before,
        "pool was lost in the failed read"
    );
    assert!(reuses > 0);
}

#[test]
fn legacy_metadata_without_checksums_reads_unverified() {
    // Forward-compat: files whose metadata predates checksums still read,
    // but the report flags every block as unverified — and one scrub
    // upgrades them to fully verified.
    let (sys, _switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(120_000, 8);
    put(&client, "vintage", &data);

    let mut meta = sys.export_meta("vintage").unwrap();
    assert!(!meta.checksums.is_empty());
    meta.checksums.clear(); // what a v2-era sidecar restores to
    sys.import_meta(meta).unwrap();

    let (got, rr) = read_with_report(&sys, &client, "vintage");
    assert_eq!(got, data);
    assert_eq!(rr.blocks_unverified, rr.blocks_fetched);
    assert_eq!(rr.blocks_corrupt, 0);

    let report = client.scrub("vintage").unwrap();
    assert_eq!(report.blocks_unverified, report.blocks_unverified.max(1));
    assert!(report.checksums_added > 0, "scrub must add digests");
    let (got2, rr2) = read_with_report(&sys, &client, "vintage");
    assert_eq!(got2, data);
    assert_eq!(rr2.blocks_unverified, 0, "scrub left blocks unverifiable");
}
