//! Concurrent-access chaos suite for the sharded backend.
//!
//! Every test drives one shared [`System`] (sharded per-disk backend,
//! group commit on) from several OS threads at once, through a
//! [`ChaosBackend`] armed with deterministic, seeded fault plans. The
//! contract under test is the concurrent extension of the chaos_write
//! suite:
//!
//! * **per-access atomicity** — every access independently commits or
//!   rolls back; a neighbour's fault never corrupts an unrelated file;
//! * **no orphans** — after the storm, on-disk bytes account exactly for
//!   the committed versions (aborted accesses leave nothing behind);
//! * **no interference** — the committed state is byte-identical whether
//!   group commit batches writes or not, and replays identically for the
//!   same seed;
//! * **pool accounting** — `pool_outstanding_bytes() == 0` once every
//!   thread is done.
//!
//! Accesses pin their layout (`QosOptions::with_pinned_disks`) so the
//! plan is a pure function of the request: dynamic disk selection reads
//! live usage and would make committed layouts depend on thread
//! interleaving, which is exactly what these tests must rule out.

use robustore::core::{
    AccessMode, ChaosBackend, Client, FaultSwitch, InMemoryBackend, PublicKey, QosOptions,
    Scrubber, StoreError, System, SystemConfig,
};
use robustore::simkit::{
    ReadFaultPlan, ReadFaultScenario, SeedSequence, WriteFaultPlan, WriteFaultScenario,
};

const DISKS: usize = 8;
const FILES: usize = 4;
const FILE_BYTES: usize = 60_000;

fn chaos_system(group_commit: usize) -> (System, FaultSwitch) {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect();
    let (backend, switch) = ChaosBackend::new(InMemoryBackend::new(speeds));
    let sys = System::with_backend(
        Box::new(backend),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            pipeline_depth: 4,
            // Every concurrent access asks for all 8 disks; the default
            // per-disk capacity of a lightly loaded store would refuse
            // some of them and couple layouts to interleaving.
            admission_capacity: 64,
            group_commit,
            ..Default::default()
        },
    );
    assert!(sys.is_sharded(), "chaos backend should shard");
    (sys, switch)
}

/// Pinned layout + fixed redundancy: the committed shape of every file
/// is independent of what the other threads are doing.
fn pinned_qos() -> QosOptions {
    QosOptions::best_effort()
        .with_pinned_disks((0..DISKS).collect())
        .with_redundancy(2.0)
}

fn payload(file: usize, version: u8) -> Vec<u8> {
    (0..FILE_BYTES)
        .map(|i| ((i * 131 + file * 29 + version as usize * 47) % 256) as u8)
        .collect()
}

fn name(file: usize) -> String {
    format!("cc-{file}")
}

fn used_snapshot(sys: &System) -> Vec<u64> {
    (0..DISKS).map(|d| sys.disk_used(d)).collect()
}

/// Serial pre-create of version 1 of every file: file ids — and with
/// them layouts and generation keys — never depend on interleaving.
fn precreate(client: &Client) {
    for f in 0..FILES {
        let mut h = client
            .open(&name(f), AccessMode::Write, pinned_qos())
            .unwrap();
        client.write(&mut h, &payload(f, 1)).unwrap();
        client.close(h).unwrap();
    }
}

fn read_back(client: &Client, file: usize) -> Vec<u8> {
    let h = client
        .open(&name(file), AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let got = client.read(&h).unwrap();
    client.close(h).unwrap();
    got
}

/// Overwrite `file` with `version` from a worker thread, releasing the
/// lock in both outcomes, and return the write's verdict.
fn overwrite(sys: &System, owner: PublicKey, file: usize, version: u8) -> Result<(), StoreError> {
    let client = Client::connect(sys, owner);
    let mut h = client.open(&name(file), AccessMode::Write, pinned_qos())?;
    let outcome = client.write(&mut h, &payload(file, version)).map(|_| ());
    client.close(h)?;
    outcome
}

/// One writer thread per file, no faults: all commit, committed state is
/// byte-identical with group commit on and off.
#[test]
fn concurrent_writers_commit_disjoint_files() {
    let run = |group_commit: usize| {
        let (sys, _switch) = chaos_system(group_commit);
        let owner = sys.register_user();
        let client = Client::connect(&sys, owner);
        precreate(&client);
        std::thread::scope(|scope| {
            for f in 0..FILES {
                let sys = sys.clone();
                scope.spawn(move || overwrite(&sys, owner, f, 2).unwrap());
            }
        });
        for f in 0..FILES {
            assert_eq!(read_back(&client, f), payload(f, 2), "file {f} corrupted");
        }
        assert_eq!(sys.pool_outstanding_bytes(), 0, "leaked pool buffers");
        used_snapshot(&sys)
    };
    let unbatched = run(1);
    let batched = run(8);
    assert_eq!(
        unbatched, batched,
        "group commit changed committed on-disk state"
    );
}

/// A seeded mid-write hard fault under four concurrent overwrites: each
/// access independently commits (new version readable) or rolls back
/// (old version bit-identical), and the store holds no orphaned blocks
/// either way.
#[test]
fn mid_write_failure_rolls_back_only_the_unlucky_accesses() {
    let (sys, switch) = chaos_system(8);
    let owner = sys.register_user();
    let client = Client::connect(&sys, owner);
    precreate(&client);
    let snapshot = used_snapshot(&sys);

    let seq = SeedSequence::new(4242);
    let plan = WriteFaultPlan::generate(
        &WriteFaultScenario::MidWriteFailure { after: 6 },
        DISKS,
        &seq,
    );
    switch.apply(&plan);

    let outcomes: Vec<Result<(), StoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..FILES)
            .map(|f| {
                let sys = sys.clone();
                scope.spawn(move || overwrite(&sys, owner, f, 2))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    switch.clear();

    // The dead disk saw 4 accesses wanting ~6 blocks each but accepted
    // only 6 in total, so someone must have hit it after it died.
    assert!(
        outcomes.iter().any(|o| o.is_err()),
        "fault never fired: {outcomes:?}"
    );
    for (f, outcome) in outcomes.iter().enumerate() {
        let expect = match outcome {
            Ok(()) => payload(f, 2),
            Err(e) => {
                assert!(matches!(e, StoreError::DiskFault { .. }), "file {f}: {e:?}");
                payload(f, 1)
            }
        };
        assert_eq!(
            read_back(&client, f),
            expect,
            "file {f} is neither the old nor the new version"
        );
    }
    // Commit and rollback leave identical byte counts here (same size,
    // same pinned layout), so any deviation is an orphan or a lost block.
    assert_eq!(
        used_snapshot(&sys),
        snapshot,
        "aborted accesses left orphans or destroyed committed blocks"
    );
    assert_eq!(sys.pool_outstanding_bytes(), 0, "leaked pool buffers");
}

/// Seeded refusing disks under concurrency: refusals are stateless, so
/// every access commits with its displaced blocks rerouted, the refused
/// disks drain to zero bytes, and the entire committed state replays
/// identically for the same seed — even though four threads raced.
#[test]
fn refusing_disks_concurrent_state_replays_identically() {
    let run = |seed: u64, group_commit: usize| {
        let (sys, switch) = chaos_system(group_commit);
        let owner = sys.register_user();
        let client = Client::connect(&sys, owner);
        precreate(&client);

        let seq = SeedSequence::new(seed);
        let plan =
            WriteFaultPlan::generate(&WriteFaultScenario::RefusingDisks { n: 2 }, DISKS, &seq);
        let refused: Vec<usize> = plan.faults.iter().map(|f| f.disk).collect();
        switch.apply(&plan);
        std::thread::scope(|scope| {
            for f in 0..FILES {
                let sys = sys.clone();
                scope.spawn(move || overwrite(&sys, owner, f, 2).unwrap());
            }
        });
        switch.clear();

        let mut state = Vec::new();
        for f in 0..FILES {
            assert_eq!(read_back(&client, f), payload(f, 2), "file {f} corrupted");
            let meta = sys.export_meta(&name(f)).unwrap();
            let mut odd: Vec<u32> = meta.odd_keys.iter().copied().collect();
            odd.sort_unstable();
            state.push((meta.layout.clone(), odd));
        }
        for &d in &refused {
            assert_eq!(
                sys.disk_used(d),
                0,
                "refused disk {d} still holds bytes after GC"
            );
        }
        assert_eq!(sys.pool_outstanding_bytes(), 0, "leaked pool buffers");
        (refused, state, used_snapshot(&sys))
    };
    let a = run(77, 8);
    let b = run(77, 8);
    assert_eq!(a, b, "same seed diverged across concurrent runs");
    let c = run(77, 1);
    assert_eq!(a, c, "group commit changed the committed state");
    let d = run(78, 8);
    assert_ne!(a.0, d.0, "different seeds should refuse different disks");
}

/// The full storm: writers overwriting, readers decoding, a scrubber
/// sweeping — all concurrently, with seeded read faults (transient +
/// corrupt + torn) armed the whole time. Every read must decode to a
/// committed version, lock conflicts are the only tolerated refusal,
/// and the pool balances to zero at the end.
#[test]
fn concurrent_read_write_scrub_stress() {
    const ROUNDS: u8 = 3;
    let (sys, switch) = chaos_system(8);
    let owner = sys.register_user();
    let client = Client::connect(&sys, owner);
    precreate(&client);

    let seq = SeedSequence::new(9091);
    let plan = ReadFaultPlan::generate(
        &ReadFaultScenario::Mixed {
            transient: 1,
            corrupt: 1,
            torn: 1,
            reads: 200,
        },
        DISKS,
        &seq,
    );
    switch.apply_read(&plan);

    let retry_open = |client: &Client, file: usize, mode: AccessMode| loop {
        match client.open(&name(file), mode, pinned_qos()) {
            Ok(h) => return h,
            Err(StoreError::LockConflict(_)) => std::thread::yield_now(),
            Err(e) => panic!("open {} for {mode:?}: {e:?}", name(file)),
        }
    };

    std::thread::scope(|scope| {
        // Two writers, two files each, ROUNDS overwrites per file.
        for w in 0..2usize {
            let sys = sys.clone();
            let retry_open = &retry_open;
            scope.spawn(move || {
                let c = Client::connect(&sys, owner);
                for version in 2..=(1 + ROUNDS) {
                    for f in (w..FILES).step_by(2) {
                        let mut h = retry_open(&c, f, AccessMode::Write);
                        c.write(&mut h, &payload(f, version)).unwrap();
                        c.close(h).unwrap();
                    }
                }
            });
        }
        // Two readers: every successful open must decode to *some*
        // committed version of that file, faults notwithstanding.
        for r in 0..2usize {
            let sys = sys.clone();
            let retry_open = &retry_open;
            scope.spawn(move || {
                let c = Client::connect(&sys, owner);
                for round in 0..ROUNDS {
                    for f in 0..FILES {
                        let h = retry_open(&c, f, AccessMode::Read);
                        let got = c.read(&h).unwrap();
                        c.close(h).unwrap();
                        assert!(
                            (1..=1 + ROUNDS).any(|v| got == payload(f, v)),
                            "reader {r} round {round}: file {f} decoded to no \
                             committed version"
                        );
                    }
                }
            });
        }
        // One scrubber sweeping throughout; only lock conflicts with the
        // writers are acceptable per-file failures.
        {
            let sys = sys.clone();
            scope.spawn(move || {
                let c = Client::connect(&sys, owner);
                let scrubber = Scrubber::new(&c);
                for _ in 0..ROUNDS {
                    let report = scrubber.sweep();
                    for (file, err) in &report.failed {
                        assert!(
                            matches!(err, StoreError::LockConflict(_)),
                            "scrub of {file} failed with {err:?}"
                        );
                    }
                }
            });
        }
    });
    switch.clear();

    // Quiesced: every file decodes to its final version and the pool
    // accounts for every byte that moved during the storm.
    for f in 0..FILES {
        assert_eq!(
            read_back(&client, f),
            payload(f, 1 + ROUNDS),
            "file {f} lost its final committed version"
        );
    }
    assert_eq!(sys.pool_outstanding_bytes(), 0, "leaked pool buffers");
    let (transient, corrupt, torn) = switch.injected_read_faults();
    assert!(
        transient + corrupt + torn > 0,
        "the storm never actually exercised a read fault"
    );
}
