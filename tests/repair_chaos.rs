//! Chaos suite for the prioritised, rate-limited repair service.
//!
//! The repair service turns the per-file scrub into a store-wide control
//! loop: a risk queue ordered by health-weighted surviving margin, a
//! token-bucket byte budget charged before every repair submission, and
//! background ring priority so repair I/O yields to foreground queues.
//! These tests pin the semantics under seeded damage and real
//! concurrency:
//!
//! * **the risk queue ranks damage and disk health** — fewest surviving
//!   blocks first, and a file whose survivors sit on flaky disks ranks
//!   riskier than an equally-present file on healthy ones;
//! * **a file deleted mid-sweep is skipped, not failed** — the scrubber
//!   must not retry a ghost forever (regression: `NotFound` used to land
//!   in `failed`);
//! * **the budget holds under load** — repair racing foreground reads
//!   never charges more than `rate · elapsed + burst` bytes, commits or
//!   rolls back cleanly (no orphan blocks: stored bytes equal exactly
//!   the metadata-reachable block set), and loses no decodability;
//! * **repair restores full strength across decay rounds** — seeded
//!   per-file loss each round, and every round ends with every file
//!   bit-correct and back to its full `n`-block target;
//! * **sweep reports feed the repair backlog** — a file the sweep could
//!   not finish (lock-busy, refused restores) is enqueued and healed by
//!   a later backlog pass that probes only the suspects, and the
//!   continuous `scrub_tick` schedule converges without any on-demand
//!   store-wide survey.

use std::sync::atomic::{AtomicBool, Ordering};

use robustore::core::{
    AccessMode, Client, InMemoryBackend, QosOptions, RepairService, ScrubOptions, Scrubber, System,
    SystemConfig, TokenBucket,
};
use robustore::diskmodel::DiskHealth;
use robustore::simkit::SeedSequence;

const DISKS: usize = 8;
const BLOCK: u64 = 4 << 10;

fn system() -> System {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect();
    System::with_backend(
        Box::new(InMemoryBackend::new(speeds)),
        SystemConfig {
            block_bytes: BLOCK,
            encode_threads: 1,
            pipeline_depth: 4,
            io_ring: true,
            read_repair: false,
            ..Default::default()
        },
    )
}

fn payload(len: usize, tag: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 31 + tag * 101) % 255) as u8)
        .collect()
}

fn put(client: &Client, name: &str, data: &[u8]) {
    let mut h = client
        .open(
            name,
            AccessMode::Write,
            QosOptions::best_effort().with_redundancy(3.0),
        )
        .unwrap();
    client.write(&mut h, data).unwrap();
    client.close(h).unwrap();
}

fn read_back(client: &Client, name: &str) -> Vec<u8> {
    let h = client
        .open(name, AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let got = client.read(&h).unwrap();
    client.close(h).unwrap();
    got
}

/// Metadata-reachable stored bytes: every block the committed layouts
/// claim that answers a presence probe. Equal to the backend's byte
/// count exactly when no orphan blocks exist.
fn reachable_bytes(sys: &System) -> u64 {
    sys.list_files()
        .iter()
        .map(|name| {
            let meta = sys.export_meta(name).unwrap();
            meta.layout
                .iter()
                .flat_map(|(d, ids)| ids.iter().map(move |&id| (*d, id)))
                .filter(|&(d, id)| sys.probe_block(d, meta.block_key(id)))
                .count() as u64
                * BLOCK
        })
        .sum()
}

#[test]
fn risk_queue_orders_by_damage_and_disk_health() {
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    put(&client, "heavy", &payload(60_000, 1));
    put(&client, "light", &payload(60_000, 2));
    put(&client, "clean", &payload(60_000, 3));

    let seq = SeedSequence::new(0x715C);
    let heavy_lost = sys.lose_file_blocks("heavy", 0.5, &seq.subsequence("loss", 0));
    let light_lost = sys.lose_file_blocks("light", 0.15, &seq.subsequence("loss", 1));
    assert!(heavy_lost > light_lost, "seeded damage must be graded");

    let service = RepairService::new(Client::connect(&sys, client.identity()));
    let queue = service.risk_queue();
    let names: Vec<&str> = queue.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(
        names,
        ["heavy", "light", "clean"],
        "risk queue must order fewest-surviving-first"
    );
    assert!(queue[0].margin < queue[1].margin);
    assert!(queue[1].margin < queue[2].margin);
    assert_eq!(queue[2].present, queue[2].target, "clean file is full");

    // Health weighting: marking every disk flaky halves every present
    // block's weight, so "clean" — still physically intact — now ranks
    // with a smaller margin than a half-weight store can justify.
    let clean_margin_healthy = queue[2].margin;
    for d in 0..DISKS {
        service.set_disk_health(d, DiskHealth::Flaky);
    }
    let reweighted = service.risk_queue();
    let clean = reweighted.iter().find(|e| e.name == "clean").unwrap();
    assert!(
        clean.margin < clean_margin_healthy,
        "flaky disks must cut the weighted margin ({} !< {clean_margin_healthy})",
        clean.margin
    );
    // Failed disks zero their blocks out entirely.
    for d in 0..DISKS {
        service.set_disk_health(d, DiskHealth::Failed);
    }
    for e in service.risk_queue() {
        assert_eq!(
            e.margin,
            -(e.k as f64),
            "all-failed disks must weight every block to zero"
        );
    }
}

#[test]
fn sweep_skips_files_deleted_mid_sweep() {
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    put(&client, "keep-a", &payload(40_000, 4));
    put(&client, "condemned", &payload(40_000, 5));
    put(&client, "keep-b", &payload(40_000, 6));

    // The sweep plan is the listing *before* the delete — exactly the
    // mid-sweep race: by the time the scrubber reaches "condemned", the
    // file is gone.
    let plan = {
        let mut names = sys.list_files();
        names.sort();
        names
    };
    assert!(plan.contains(&"condemned".to_string()));
    client.delete("condemned").unwrap();

    let report = Scrubber::new(&client).sweep_names(&plan, &ScrubOptions::default());
    assert_eq!(
        report.skipped,
        vec!["condemned".to_string()],
        "a deleted file is a skip, not damage"
    );
    assert!(
        report.failed.is_empty(),
        "regression: NotFound must not be recorded as a failure (would retry forever): {:?}",
        report.failed
    );
    assert_eq!(report.scrubbed.len(), 2);

    // And the race under real concurrency: a deleter thread racing the
    // sweep must only ever produce scrubbed or skipped outcomes.
    put(&client, "condemned", &payload(40_000, 5));
    let deleter_sys = sys.clone();
    let identity = client.identity();
    std::thread::scope(|scope| {
        let deleter = scope.spawn(move || {
            let dc = Client::connect(&deleter_sys, identity);
            // Retry: the sweep may hold the file's lock mid-scrub.
            loop {
                match dc.delete("condemned") {
                    Ok(()) => break,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        for _ in 0..20 {
            let r = Scrubber::new(&client).sweep_with(&ScrubOptions::default());
            for (name, err) in &r.failed {
                assert!(
                    name != "condemned",
                    "concurrent delete surfaced as failure: {err}"
                );
            }
        }
        deleter.join().unwrap();
    });
    let report = Scrubber::new(&client).sweep();
    assert!(report.failed.is_empty());
    assert!(!report.scrubbed.iter().any(|r| r.file == "condemned"));
}

#[test]
fn rate_limited_repair_under_foreground_load_holds_budget_and_state() {
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    let hot = payload(80_000, 7);
    put(&client, "hot", &hot);
    for f in 0..4 {
        put(&client, &format!("cold-{f}"), &payload(80_000, 10 + f));
    }
    let seq = SeedSequence::new(0xBEEF);
    for f in 0..4u64 {
        sys.lose_file_blocks(&format!("cold-{f}"), 0.3, &seq.subsequence("loss", f));
    }

    // Generous enough to finish in test time, tight enough that the
    // ceiling invariant is a real constraint (scrubbing 4 files reads
    // ~4.6 MB).
    let rate = 64e6;
    let burst = 256 * 1024;
    let stop = AtomicBool::new(false);
    let identity = client.identity();
    let service = RepairService::new(Client::connect(&sys, identity)).with_rate(rate, burst);

    std::thread::scope(|scope| {
        let repair = scope.spawn(|| {
            let mut cycles = 0u32;
            let mut reports = Vec::new();
            while !stop.load(Ordering::Relaxed) && cycles < 50 {
                reports.push(service.run_cycle(usize::MAX));
                cycles += 1;
            }
            reports
        });
        // Foreground reads hammer the hot file the whole time the repair
        // service works the cold set.
        for _ in 0..30 {
            assert_eq!(read_back(&client, "hot"), hot, "foreground read corrupted");
        }
        stop.store(true, Ordering::Relaxed);
        let reports = repair.join().unwrap();
        let bucket = service.bucket().expect("rate-limited service has a bucket");
        assert!(
            bucket.consumed() as f64 <= bucket.budget_ceiling(),
            "token bucket exceeded: {} > {:.0}",
            bucket.consumed(),
            bucket.budget_ceiling()
        );
        let restored: usize = reports.iter().map(|r| r.blocks_restored).sum();
        assert!(restored > 0, "seeded damage must force restores");
        assert!(
            reports.iter().all(|r| r.failed.is_empty()),
            "no repair cycle may fail: {:?}",
            reports
                .iter()
                .flat_map(|r| r.failed.clone())
                .collect::<Vec<_>>()
        );
        // Charges account for at least the restored payload.
        assert!(bucket.consumed() >= (restored as u64) * BLOCK);
    });

    // Quiesced: a final cycle tops everything up, then the store must be
    // exactly consistent — every file decodable and bit-correct, every
    // file at full strength, and not one orphan byte (commit-or-rollback
    // means stored bytes == metadata-reachable bytes).
    service.run_cycle(usize::MAX);
    assert_eq!(read_back(&client, "hot"), hot);
    for f in 0..4 {
        assert_eq!(
            read_back(&client, &format!("cold-{f}")),
            payload(80_000, 10 + f),
            "cold-{f} lost decodability"
        );
    }
    for e in service.risk_queue() {
        assert_eq!(e.present, e.target, "{} not at full strength", e.name);
    }
    assert_eq!(
        sys.total_used(),
        reachable_bytes(&sys),
        "orphan blocks: backend stores bytes no layout reaches"
    );
    assert_eq!(sys.pool_outstanding_bytes(), 0);
}

#[test]
fn repair_service_survives_repeated_decay_rounds() {
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    for f in 0..3 {
        put(&client, &format!("file-{f}"), &payload(60_000, 20 + f));
    }
    let service = RepairService::new(Client::connect(&sys, client.identity()));
    let seq = SeedSequence::new(0xDECA);
    for round in 0..5u64 {
        for f in 0..3u64 {
            sys.lose_file_blocks(
                &format!("file-{f}"),
                0.35,
                &seq.subsequence("decay", round * 3 + f),
            );
        }
        let report = service.run_cycle(usize::MAX);
        assert!(
            report.failed.is_empty(),
            "round {round} failed: {:?}",
            report.failed
        );
        assert!(report.blocks_restored > 0, "round {round} restored nothing");
        // Zero decodability loss, every round, hard-asserted.
        for f in 0..3 {
            assert_eq!(
                read_back(&client, &format!("file-{f}")),
                payload(60_000, 20 + f),
                "file-{f} lost data in round {round}"
            );
        }
        for e in service.risk_queue() {
            assert_eq!(
                e.present, e.target,
                "round {round}: {} not restored to full strength",
                e.name
            );
        }
    }
    assert_eq!(sys.total_used(), reachable_bytes(&sys), "orphan blocks");
    assert_eq!(sys.pool_outstanding_bytes(), 0);
}

#[test]
fn unthrottled_bucket_charges_are_exact() {
    // The accounting side of the budget: an unlimited bucket still
    // counts every byte the scrub path charges, fetch and restore both.
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    put(&client, "f", &payload(40_000, 9));
    let meta = sys.export_meta("f").unwrap();
    let stored: usize = meta.layout.iter().map(|(_, ids)| ids.len()).sum();
    let seq = SeedSequence::new(0xACC7);
    let lost = sys.lose_file_blocks("f", 0.25, &seq.subsequence("loss", 0));
    assert!(lost > 0);

    let bucket = TokenBucket::new(0.0, 0);
    let opts = ScrubOptions {
        throttle: Some(&bucket),
        background: true,
        load_aware: true,
    };
    let report = client.scrub_with("f", &opts).unwrap();
    assert_eq!(report.blocks_restored, lost);
    // Fetch charges one block per *stored* id (missing reads still paid
    // for the attempt), restores one per absent id.
    assert_eq!(
        bucket.consumed(),
        (stored as u64) * BLOCK + (lost as u64) * BLOCK,
        "scrub charged a different byte count than it moved"
    );
}

#[test]
fn sweep_reports_feed_the_repair_backlog() {
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    put(&client, "busy", &payload(60_000, 30));
    put(&client, "hurt", &payload(60_000, 31));
    put(&client, "fine", &payload(60_000, 32));

    // Both "busy" and "hurt" are damaged, but "busy" is also
    // write-locked: the sweep heals "hurt" in place and must hand
    // "busy" to the repair backlog instead of failing it.
    let seq = SeedSequence::new(0xFEED);
    assert!(sys.lose_file_blocks("busy", 0.3, &seq.subsequence("loss", 0)) > 0);
    assert!(sys.lose_file_blocks("hurt", 0.3, &seq.subsequence("loss", 1)) > 0);
    let held = client
        .open("busy", AccessMode::Write, QosOptions::best_effort())
        .unwrap();

    let service = RepairService::new(Client::connect(&sys, client.identity()));
    let sweep = Scrubber::new(&client).sweep();
    assert_eq!(
        sweep.skipped,
        vec!["busy".to_string()],
        "lock-busy file must be a skip, not a failure"
    );
    assert!(sweep.failed.is_empty(), "failed: {:?}", sweep.failed);
    assert_eq!(
        service.enqueue_sweep(&sweep),
        1,
        "only the skip rides into the backlog"
    );
    assert_eq!(service.pending(), vec!["busy".to_string()]);

    // Still locked: the backlog pass re-queues it instead of failing.
    let r = service.run_enqueued(usize::MAX);
    assert_eq!((r.repaired, r.skipped), (0, 1));
    assert!(r.failed.is_empty());
    assert_eq!(service.pending(), vec!["busy".to_string()]);

    // Lock released: the next backlog pass repairs it by probing only
    // the enqueued file — no store-wide survey.
    client.close(held).unwrap();
    let r = service.run_enqueued(usize::MAX);
    assert_eq!(r.surveyed, 1, "backlog pass surveys only enqueued files");
    assert_eq!(r.repaired, 1);
    assert!(r.blocks_restored > 0);
    assert!(service.pending().is_empty());
    assert_eq!(read_back(&client, "busy"), payload(60_000, 30));
    for e in service.risk_queue() {
        assert_eq!(e.present, e.target, "{} not at full strength", e.name);
    }
}

#[test]
fn continuous_scrub_ticks_converge_without_on_demand_surveys() {
    let sys = system();
    let client = Client::connect(&sys, sys.register_user());
    for f in 0..3 {
        put(&client, &format!("tick-{f}"), &payload(50_000, 40 + f));
    }
    let service = RepairService::new(Client::connect(&sys, client.identity()));
    let seq = SeedSequence::new(0x71CC);
    for f in 0..3u64 {
        sys.lose_file_blocks(&format!("tick-{f}"), 0.35, &seq.subsequence("decay", f));
    }

    // Tick 1: a writer holds tick-1, so the sweep skips it and the tick
    // enqueues it for later instead of dropping it on the floor.
    let held = client
        .open("tick-1", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    let t1 = service.scrub_tick(usize::MAX);
    assert_eq!(
        t1.backlog.surveyed, 0,
        "nothing queued before the first tick"
    );
    assert_eq!(t1.sweep.skipped, vec!["tick-1".to_string()]);
    assert!(t1.sweep.failed.is_empty());
    assert_eq!(t1.enqueued_for_next, 1);
    client.close(held).unwrap();

    // Tick 2: the backlog pass heals tick-1 before the sweep even runs,
    // and the schedule quiesces — nothing left for tick 3.
    let t2 = service.scrub_tick(usize::MAX);
    assert_eq!(t2.backlog.repaired, 1);
    assert!(t2.backlog.blocks_restored > 0);
    assert_eq!(t2.enqueued_for_next, 0);
    assert!(service.pending().is_empty());
    for f in 0..3 {
        assert_eq!(
            read_back(&client, &format!("tick-{f}")),
            payload(50_000, 40 + f),
            "tick-{f} lost data"
        );
    }
    for e in service.risk_queue() {
        assert_eq!(e.present, e.target, "{} not at full strength", e.name);
    }
}
