//! Full-stack determinism: identical seeds produce bit-identical results
//! through every layer — the property the reproducibility of every figure
//! rests on.

use robustore::schemes::{
    run_access, run_trials, AccessConfig, AccessKind, FaultScenario, SchemeKind,
};
use robustore::simkit::SeedSequence;

fn cfg(scheme: SchemeKind) -> AccessConfig {
    let mut cfg = AccessConfig::default().with_scheme(scheme).with_disks(8);
    cfg.data_bytes = 32 << 20;
    cfg.cluster.num_disks = 16;
    cfg
}

#[test]
fn single_access_bitwise_reproducible() {
    for scheme in SchemeKind::ALL {
        for kind in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::ReadAfterWrite,
        ] {
            let c = cfg(scheme).with_kind(kind);
            let a = run_access(&c, &SeedSequence::new(0xAB));
            let b = run_access(&c, &SeedSequence::new(0xAB));
            assert_eq!(a.latency, b.latency, "{scheme:?}/{kind:?}");
            assert_eq!(a.network_bytes, b.network_bytes, "{scheme:?}/{kind:?}");
            assert_eq!(
                a.blocks_at_completion, b.blocks_at_completion,
                "{scheme:?}/{kind:?}"
            );
        }
    }
}

#[test]
fn aggregates_reproducible_across_invocations() {
    let c = cfg(SchemeKind::RobuStore);
    let s1 = run_trials(&c, 5, 99);
    let s2 = run_trials(&c, 5, 99);
    assert_eq!(s1.bandwidth.mean().to_bits(), s2.bandwidth.mean().to_bits());
    assert_eq!(s1.latency.stdev().to_bits(), s2.latency.stdev().to_bits());
    assert_eq!(
        s1.io_overhead.mean().to_bits(),
        s2.io_overhead.mean().to_bits()
    );
}

/// The fault layer keeps the bitwise-reproducibility contract: for every
/// scheme and every fault scenario, the same seed yields a byte-identical
/// per-request outcome log (the event trace) and identical metrics —
/// including runs the injected faults kill outright.
#[test]
fn fault_schedules_are_bitwise_reproducible() {
    let scenarios = [
        FaultScenario::none(),
        FaultScenario::one_slow_disk(6.0),
        FaultScenario::n_failures(2),
        FaultScenario::flaky(0.15),
        FaultScenario::load_bursts(2),
    ];
    for scheme in SchemeKind::ALL {
        for scenario in &scenarios {
            let c = cfg(scheme).with_faults(*scenario);
            let a = run_access(&c, &SeedSequence::new(0xF001));
            let b = run_access(&c, &SeedSequence::new(0xF001));
            let tag = format!("{scheme:?}/{}", scenario.name());
            assert_eq!(a.request_log, b.request_log, "{tag}: outcome log");
            assert!(!a.request_log.is_empty(), "{tag}: log must be populated");
            assert_eq!(a.latency, b.latency, "{tag}: latency");
            assert_eq!(a.network_bytes, b.network_bytes, "{tag}: network bytes");
            assert_eq!(a.failed, b.failed, "{tag}: failure flag");
        }
    }
}

/// Aggregated statistics under faults are reproducible to the bit, and
/// the per-request outcome counters agree across invocations.
#[test]
fn faulted_aggregates_reproducible() {
    for scheme in SchemeKind::ALL {
        let c = cfg(scheme).with_faults(FaultScenario::one_slow_disk(8.0));
        let s1 = run_trials(&c, 4, 77);
        let s2 = run_trials(&c, 4, 77);
        assert_eq!(
            s1.latency.stdev().to_bits(),
            s2.latency.stdev().to_bits(),
            "{scheme:?}"
        );
        assert_eq!(s1.served_requests, s2.served_requests, "{scheme:?}");
        assert_eq!(s1.cancelled_requests, s2.cancelled_requests, "{scheme:?}");
        assert_eq!(s1.timed_out_requests, s2.timed_out_requests, "{scheme:?}");
        assert_eq!(s1.failed_requests, s2.failed_requests, "{scheme:?}");
        assert_eq!(s1.failures, s2.failures, "{scheme:?}");
    }
}

/// Injecting a fault scenario actually perturbs the run (it is not a
/// silent no-op), while leaving the no-fault stream untouched: a config
/// with `FaultScenario::None` behaves identically to one that never
/// mentions faults.
#[test]
fn fault_injection_perturbs_and_none_is_identity() {
    let c = cfg(SchemeKind::RobuStore);
    let base = run_access(&c, &SeedSequence::new(0xF002));
    let none = run_access(
        &c.clone().with_faults(FaultScenario::none()),
        &SeedSequence::new(0xF002),
    );
    assert_eq!(base.latency, none.latency);
    assert_eq!(base.request_log, none.request_log);

    let slow = run_access(
        &c.clone().with_faults(FaultScenario::one_slow_disk(8.0)),
        &SeedSequence::new(0xF002),
    );
    assert!(
        slow.latency != base.latency || slow.request_log != base.request_log,
        "a slow disk must leave a trace"
    );
}

#[test]
fn different_seeds_differ() {
    let c = cfg(SchemeKind::RobuStore);
    let a = run_access(&c, &SeedSequence::new(1));
    let b = run_access(&c, &SeedSequence::new(2));
    assert_ne!(
        (a.latency, a.network_bytes),
        (b.latency, b.network_bytes),
        "distinct seeds should explore distinct samples"
    );
}
