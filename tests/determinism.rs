//! Full-stack determinism: identical seeds produce bit-identical results
//! through every layer — the property the reproducibility of every figure
//! rests on.

use robustore::schemes::{run_access, run_trials, AccessConfig, AccessKind, SchemeKind};
use robustore::simkit::SeedSequence;

fn cfg(scheme: SchemeKind) -> AccessConfig {
    let mut cfg = AccessConfig::default().with_scheme(scheme).with_disks(8);
    cfg.data_bytes = 32 << 20;
    cfg.cluster.num_disks = 16;
    cfg
}

#[test]
fn single_access_bitwise_reproducible() {
    for scheme in SchemeKind::ALL {
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::ReadAfterWrite] {
            let c = cfg(scheme).with_kind(kind);
            let a = run_access(&c, &SeedSequence::new(0xAB));
            let b = run_access(&c, &SeedSequence::new(0xAB));
            assert_eq!(a.latency, b.latency, "{scheme:?}/{kind:?}");
            assert_eq!(a.network_bytes, b.network_bytes, "{scheme:?}/{kind:?}");
            assert_eq!(
                a.blocks_at_completion, b.blocks_at_completion,
                "{scheme:?}/{kind:?}"
            );
        }
    }
}

#[test]
fn aggregates_reproducible_across_invocations() {
    let c = cfg(SchemeKind::RobuStore);
    let s1 = run_trials(&c, 5, 99);
    let s2 = run_trials(&c, 5, 99);
    assert_eq!(s1.bandwidth.mean().to_bits(), s2.bandwidth.mean().to_bits());
    assert_eq!(s1.latency.stdev().to_bits(), s2.latency.stdev().to_bits());
    assert_eq!(
        s1.io_overhead.mean().to_bits(),
        s2.io_overhead.mean().to_bits()
    );
}

#[test]
fn different_seeds_differ() {
    let c = cfg(SchemeKind::RobuStore);
    let a = run_access(&c, &SeedSequence::new(1));
    let b = run_access(&c, &SeedSequence::new(2));
    assert_ne!(
        (a.latency, a.network_bytes),
        (b.latency, b.network_bytes),
        "distinct seeds should explore distinct samples"
    );
}
