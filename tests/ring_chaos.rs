//! Chaos suite for the async I/O ring (`SystemConfig::io_ring`).
//!
//! The ring moves backend service onto per-disk workers: submissions
//! queue, workers coalesce cross-access write runs into one group-commit
//! dispatch, and speculative reads are revoked in the queue once the
//! decoder has enough. These tests pin the semantics that make that
//! reorganisation invisible to committed state:
//!
//! * **cancellation reclaims disk time without mutating anything** — a
//!   speculative read services strictly fewer block reads than the file
//!   stores, returns every buffer, and leaves stored bytes untouched;
//! * **write aborts roll back** exactly as on the blocking path: a disk
//!   that hard-faults mid-access surfaces as `DiskFault`, no orphan
//!   bytes or metadata survive, and a retry after the fault clears
//!   commits normally;
//! * **cross-access group commit respects per-disk submission order** —
//!   pinned with a gated shard that holds the first dispatch in service
//!   while writes from several accesses queue behind it, then observes
//!   one coalesced batch in submission order (and that a cancelled
//!   access's queued writes never reach the backend at all);
//! * **seeded replay is identical ring vs blocking** under persistent
//!   damage (lost blocks, bit rot, an offline-disk window): decoded
//!   bytes, layouts, and per-disk byte counts all match. Budgeted fault
//!   switches are deliberately absent here — the ring may service a few
//!   already-queued ops past the decode point, so *consumable* fault
//!   budgets are the one place the two paths legitimately diverge (see
//!   `tests/chaos_read.rs`, which pins those counters on the blocking
//!   path).

use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use robustore::core::{
    AccessMode, ChaosBackend, Client, CompletionKind, DiskShard, InMemoryBackend, IoRing,
    QosOptions, ReadPolicy, RefusedWrite, RingConfig, Scrubber, ShardedBackend, StorageBackend,
    StoreError, SubmitOp, System, SystemConfig, WriteOutcome,
};
use robustore::simkit::SeedSequence;

const DISKS: usize = 8;

fn speeds() -> Vec<f64> {
    (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect()
}

fn ring_system(io_ring: bool) -> System {
    let sys = System::with_backend(
        Box::new(InMemoryBackend::new(speeds())),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            pipeline_depth: 4,
            io_ring,
            ..Default::default()
        },
    );
    assert_eq!(sys.uses_io_ring(), io_ring);
    sys
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + salt as usize) % 256) as u8)
        .collect()
}

fn put(client: &Client, name: &str, data: &[u8], qos: QosOptions) {
    let mut h = client.open(name, AccessMode::Write, qos).unwrap();
    client.write(&mut h, data).unwrap();
    client.close(h).unwrap();
}

#[test]
fn cancelled_reads_save_disk_ops_and_never_mutate() {
    let sys = ring_system(true);
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(150_000, 1);
    // 3× redundancy: the file stores far more blocks than a decode
    // needs, so revocation has real disk time to reclaim.
    put(
        &client,
        "spec",
        &data,
        QosOptions::best_effort().with_redundancy(3.0),
    );
    let stored = sys.export_meta("spec").unwrap().stored_blocks();
    let (reads0, writes0) = sys.backend_stats();
    let used0 = sys.total_used();

    let h = client
        .open("spec", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let (got, rr) = client.read_with_report(&h).unwrap();
    client.close(h).unwrap();
    assert_eq!(got, data);

    let (reads1, writes1) = sys.backend_stats();
    let serviced = (reads1 - reads0) as usize;
    assert!(
        serviced < stored,
        "cancellation reclaimed nothing: {serviced} reads serviced, {stored} stored"
    );
    assert!(rr.blocks_cancelled > 0, "no requests were revoked");
    assert!(
        rr.blocks_fetched <= serviced,
        "decoder consumed blocks the backend never served"
    );
    // Cancelled and drained ops must not mutate anything.
    assert_eq!(writes1, writes0, "a speculative read issued writes");
    assert_eq!(
        sys.total_used(),
        used0,
        "a speculative read changed stored bytes"
    );
    assert_eq!(sys.pool_outstanding_bytes(), 0, "read leaked pool buffers");

    // And the file is untouched: a second read returns identical bytes.
    let h = client
        .open("spec", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert_eq!(client.read(&h).unwrap(), data);
    client.close(h).unwrap();
    assert_eq!(sys.pool_outstanding_bytes(), 0);
}

#[test]
fn ring_write_abort_rolls_back_and_retry_succeeds() {
    let (backend, switch) = ChaosBackend::new(InMemoryBackend::new(speeds()));
    let sys = System::with_backend(
        Box::new(backend),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            pipeline_depth: 4,
            io_ring: true,
            ..Default::default()
        },
    );
    let client = Client::connect(&sys, sys.register_user());
    let data = payload(160_000, 2);

    // Disk 3 accepts two blocks, then hard-faults. Completions are
    // consumed in submission order, so the surfaced error is the first
    // fault — deterministically disk 3.
    switch.fail_disk_after(3, 2);
    let mut h = client
        .open("fresh", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    let err = client.write(&mut h, &data).unwrap_err();
    assert!(matches!(err, StoreError::DiskFault { disk: 3 }), "{err:?}");
    client.close(h).unwrap();

    // Full rollback: in-flight completions drained, every committed
    // block deleted, no metadata, no leaked buffers.
    assert_eq!(sys.total_used(), 0, "aborted ring write left orphans");
    assert!(
        sys.export_meta("fresh").is_none(),
        "aborted write left metadata"
    );
    assert_eq!(sys.pool_outstanding_bytes(), 0);

    // The retry (fault cleared) commits normally.
    switch.clear();
    put(&client, "fresh", &data, QosOptions::best_effort());
    let h = client
        .open("fresh", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert_eq!(client.read(&h).unwrap(), data);
    client.close(h).unwrap();
    assert_eq!(sys.pool_outstanding_bytes(), 0);
}

/// Blocks the first commit dispatch in service while later submissions
/// queue, so the coalescing decision behind it is deterministic.
struct Gate {
    held: Mutex<bool>,
    released: Condvar,
    entered: Mutex<usize>,
    entry: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            held: Mutex::new(true),
            released: Condvar::new(),
            entered: Mutex::new(0),
            entry: Condvar::new(),
        })
    }

    /// Called by the shard at dispatch entry: count the entry, then park
    /// until the test releases the gate.
    fn enter_and_wait(&self) {
        *self.entered.lock().unwrap() += 1;
        self.entry.notify_all();
        let mut held = self.held.lock().unwrap();
        while *held {
            held = self.released.wait(held).unwrap();
        }
    }

    fn wait_entered(&self, n: usize) {
        let mut e = self.entered.lock().unwrap();
        while *e < n {
            e = self.entry.wait(e).unwrap();
        }
    }

    fn release(&self) {
        *self.held.lock().unwrap() = false;
        self.released.notify_all();
    }
}

/// A [`DiskShard`] that records the keys of every commit dispatch and
/// parks each dispatch on the shared [`Gate`].
struct GateShard {
    inner: Box<dyn DiskShard>,
    gate: Arc<Gate>,
    log: Arc<Mutex<Vec<Vec<u64>>>>,
}

impl DiskShard for GateShard {
    fn disk_id(&self) -> usize {
        self.inner.disk_id()
    }

    fn write_block(&mut self, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.inner.write_block(block, data)
    }

    fn commit_batch(&mut self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Result<(), RefusedWrite>> {
        self.gate.enter_and_wait();
        self.log
            .lock()
            .unwrap()
            .push(batch.iter().map(|(k, _)| *k).collect());
        self.inner.commit_batch(batch)
    }

    fn read_block_into(&self, block: u64, buf: &mut Vec<u8>) -> Result<(), StoreError> {
        self.inner.read_block_into(block, buf)
    }

    fn delete_block(&mut self, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(block)
    }

    fn speed(&self) -> f64 {
        self.inner.speed()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn count_read(&mut self) {
        self.inner.count_read()
    }

    fn reads(&self) -> u64 {
        self.inner.reads()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }
}

/// Single-disk backend whose shard is a [`GateShard`].
struct GateBackend {
    inner: InMemoryBackend,
    gate: Arc<Gate>,
    log: Arc<Mutex<Vec<Vec<u64>>>>,
}

impl StorageBackend for GateBackend {
    fn num_disks(&self) -> usize {
        self.inner.num_disks()
    }

    fn write_block(&mut self, disk: usize, block: u64, data: Vec<u8>) -> Result<(), RefusedWrite> {
        self.inner.write_block(disk, block, data)
    }

    fn read_block(&self, disk: usize, block: u64) -> Result<Vec<u8>, StoreError> {
        self.inner.read_block(disk, block)
    }

    fn delete_block(&mut self, disk: usize, block: u64) -> Result<(), StoreError> {
        self.inner.delete_block(disk, block)
    }

    fn disk_speed(&self, disk: usize) -> f64 {
        self.inner.disk_speed(disk)
    }

    fn disk_used(&self, disk: usize) -> u64 {
        self.inner.disk_used(disk)
    }

    fn try_shard(&mut self) -> Option<Vec<Box<dyn DiskShard>>> {
        let gate = self.gate.clone();
        let log = self.log.clone();
        self.inner.try_shard().map(|shards| {
            shards
                .into_iter()
                .map(|inner| {
                    Box::new(GateShard {
                        inner,
                        gate: gate.clone(),
                        log: log.clone(),
                    }) as Box<dyn DiskShard>
                })
                .collect()
        })
    }
}

#[test]
fn cross_access_batches_respect_submission_order_and_cancel_revokes_queued_writes() {
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let backend = GateBackend {
        inner: InMemoryBackend::new(vec![50e6]),
        gate: gate.clone(),
        log: log.clone(),
    };
    let sharded = Arc::new(ShardedBackend::new(Box::new(backend), true));
    assert!(sharded.is_sharded());
    let ring = IoRing::start(
        sharded.clone(),
        RingConfig {
            group_commit: 8,
            read_attempts: 3,
            backoff_micros: 50,
        },
    );
    let (tx_keep, rx_keep) = mpsc::channel();
    let (tx_gone, rx_gone) = mpsc::channel();
    let block = vec![0xC3u8; 64];

    // Access 1's first write enters service alone and parks on the gate.
    let w = |key| SubmitOp::Write {
        key,
        data: block.clone(),
    };
    ring.submit(0, 1, 0, w(10), &tx_keep);
    gate.wait_entered(1);

    // While the disk is busy, writes from three accesses queue behind it
    // in submission order — interleaved on purpose.
    ring.submit(0, 1, 1, w(11), &tx_keep);
    ring.submit(0, 2, 0, w(20), &tx_gone);
    ring.submit(0, 3, 0, w(30), &tx_keep);
    ring.submit(0, 2, 1, w(21), &tx_gone);

    // Access 2 cancels before service: its queued writes come back
    // unserviced with the payload intact.
    ring.cancel(2);
    for _ in 0..2 {
        let c = rx_gone.recv().unwrap();
        assert_eq!(c.access, 2);
        assert!(
            matches!(c.kind, CompletionKind::Cancelled { buf: Some(ref b) } if b.len() == 64),
            "cancelled write lost its payload"
        );
    }

    gate.release();
    for _ in 0..3 {
        let c = rx_keep.recv().unwrap();
        assert!(
            matches!(c.kind, CompletionKind::Write(WriteOutcome::Done)),
            "surviving write failed"
        );
    }
    drop(ring); // joins the worker; queues are fully drained

    // Exactly two dispatches: the gated single, then ONE coalesced batch
    // carrying accesses 1 and 3 in submission order — with access 2's
    // keys absent (the backend never saw them).
    let dispatches = log.lock().unwrap().clone();
    assert_eq!(
        dispatches,
        vec![vec![10], vec![11, 30]],
        "cross-access coalescing or ordering broke"
    );
    assert_eq!(sharded.writes(), 3);
    assert_eq!(sharded.disk_used(0), 3 * 64);
}

#[test]
fn seeded_persistent_faults_replay_identically_ring_vs_blocking() {
    // Decoded bytes, committed layouts, and per-disk byte counts must be
    // identical with the ring on or off AND under either wave policy,
    // through damage, an offline window, and a scrub sweep. Persistent
    // faults only — see the module doc for why budgeted fault switches
    // are excluded.
    //
    // The adaptive policy may legally reorder the speculative-read
    // prefix on a wall-clock EWMA hiccup, so which damaged blocks a read
    // *observes* is schedule-dependent. Read-repair canonicalises: it
    // audits every stored id the read didn't verify before committing,
    // so the committed set is the full damage set in every run and the
    // schedule moves wall-clock only. This test pins that guarantee by
    // comparing Static and Adaptive ring runs (and the blocking oracle)
    // for byte-identical committed state.
    let run = |io_ring: bool, read_policy: ReadPolicy| {
        let sys = System::with_backend(
            Box::new(InMemoryBackend::new(speeds())),
            SystemConfig {
                block_bytes: 4 << 10,
                encode_threads: 2,
                pipeline_depth: 4,
                io_ring,
                read_policy,
                ..Default::default()
            },
        );
        assert_eq!(sys.uses_io_ring(), io_ring);
        let client = Client::connect(&sys, sys.register_user());
        let alpha = payload(200_000, 11);
        let beta = payload(140_000, 12);
        put(&client, "alpha", &alpha, QosOptions::best_effort());
        put(&client, "beta", &beta, QosOptions::best_effort());

        let seq = SeedSequence::new(0xB0);
        sys.lose_blocks(2, 0.5, &seq.subsequence("lose", 0));
        sys.corrupt_blocks(5, 0.4, &seq.subsequence("rot", 0));
        sys.set_disk_offline(1, true);

        let mut decoded = Vec::new();
        for name in ["alpha", "beta"] {
            let h = client
                .open(name, AccessMode::Read, QosOptions::best_effort())
                .unwrap();
            decoded.push(client.read(&h).unwrap());
            client.close(h).unwrap();
        }
        sys.set_disk_offline(1, false);
        let sweep = Scrubber::new(&client).sweep();
        assert!(sweep.failed.is_empty(), "scrub failed: {:?}", sweep.failed);
        for name in ["alpha", "beta"] {
            let h = client
                .open(name, AccessMode::Read, QosOptions::best_effort())
                .unwrap();
            decoded.push(client.read(&h).unwrap());
            client.close(h).unwrap();
        }
        assert_eq!(sys.pool_outstanding_bytes(), 0);

        let mut state = String::new();
        for name in sys.list_files() {
            let meta = sys.export_meta(&name).unwrap();
            let mut odd: Vec<u32> = meta.odd_keys.iter().copied().collect();
            odd.sort_unstable();
            state += &format!(
                "{name} layout={:?} odd={odd:?} checksums={};",
                meta.layout,
                meta.checksums.len()
            );
        }
        let used: Vec<u64> = (0..DISKS).map(|d| sys.disk_used(d)).collect();
        (decoded, used, state)
    };

    let ring_static = run(true, ReadPolicy::Static);
    let ring_adaptive = run(true, ReadPolicy::adaptive());
    let blocking = run(false, ReadPolicy::Static);
    assert_eq!(ring_static.0[0], payload(200_000, 11));
    assert_eq!(ring_static.0[1], payload(140_000, 12));
    assert_eq!(
        ring_static, blocking,
        "ring diverged from the blocking oracle"
    );
    assert_eq!(
        ring_adaptive, blocking,
        "adaptive wave policy changed committed state, not just wall-clock"
    );
}
