//! Differential oracle for the sharded backend.
//!
//! The sharded submission layer (per-disk locks, routing, group commit)
//! is a pure performance refactor: for any schedule of operations it
//! must commit *exactly* the state the old single-lock backend would
//! have. These properties run random serial schedules — create,
//! overwrite, in-place update, delete, read — against a sharded system
//! and a whole-backend system side by side and require the final states
//! to match in every observable dimension: file listing, per-file layout
//! and generation parity, read-back bytes (also checked against an
//! in-test model of the expected contents), and per-disk byte counts.
//!
//! Deliberately *no* pinned layouts here: the dynamic planner reads live
//! usage, so any divergence in how the two backends account bytes or
//! route writes snowballs into different layouts and fails loudly.

use std::collections::BTreeMap;

use proptest::prelude::*;
use robustore::core::{
    AccessMode, Client, InMemoryBackend, QosOptions, StoreError, System, SystemConfig,
};

const DISKS: usize = 8;

/// One step of a schedule, decoded from raw proptest integers so the
/// strategy stays shrinkable.
#[derive(Debug, Clone)]
enum Op {
    Write { file: usize, len: usize, salt: u8 },
    Update { file: usize, at: u16, salt: u8 },
    Delete { file: usize },
    Read { file: usize },
}

/// Raw schedule entry: `((kind, file), (len, salt, at))`, nested because
/// the vendored proptest implements `Strategy` for tuples up to arity 4.
type RawOp = ((usize, usize), (usize, u8, u16));

fn decode_ops(raw: &[RawOp]) -> Vec<Op> {
    raw.iter()
        .map(|&((kind, file), (len, salt, at))| match kind % 4 {
            0 => Op::Write { file, len, salt },
            1 => Op::Update { file, at, salt },
            2 => Op::Delete { file },
            _ => Op::Read { file },
        })
        .collect()
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 73 + salt as usize * 151) % 256) as u8)
        .collect()
}

fn fname(file: usize) -> String {
    format!("diff-{file}")
}

fn make_system(sharded: bool, group_commit: usize, io_ring: bool) -> System {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 12e6 + i as f64 * 7e6).collect();
    let sys = System::with_backend(
        Box::new(InMemoryBackend::new(speeds)),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            pipeline_depth: 4,
            sharded,
            group_commit,
            io_ring,
            ..Default::default()
        },
    );
    assert_eq!(sys.is_sharded(), sharded);
    assert_eq!(sys.uses_io_ring(), io_ring);
    sys
}

/// Run `ops` serially, mirroring every mutation into `model` (the
/// expected plain-bytes content per live file).
fn run_schedule(sys: &System, client: &Client, ops: &[Op], model: &mut BTreeMap<String, Vec<u8>>) {
    for op in ops {
        match *op {
            Op::Write { file, len, salt } => {
                let data = pattern(len, salt);
                let mut h = client
                    .open(&fname(file), AccessMode::Write, QosOptions::best_effort())
                    .unwrap();
                client.write(&mut h, &data).unwrap();
                client.close(h).unwrap();
                model.insert(fname(file), data);
            }
            Op::Update { file, at, salt } => {
                let Some(current) = model.get_mut(&fname(file)) else {
                    continue;
                };
                let offset = at as usize % current.len();
                let len = ((salt as usize % 96) + 1).min(current.len() - offset);
                let patch = pattern(len, salt.wrapping_add(1));
                let mut h = client
                    .open(&fname(file), AccessMode::Write, QosOptions::best_effort())
                    .unwrap();
                client.update(&mut h, offset as u64, &patch).unwrap();
                client.close(h).unwrap();
                current[offset..offset + len].copy_from_slice(&patch);
            }
            Op::Delete { file } => {
                if model.remove(&fname(file)).is_none() {
                    assert!(matches!(
                        client.delete(&fname(file)),
                        Err(StoreError::NotFound(_))
                    ));
                } else {
                    client.delete(&fname(file)).unwrap();
                }
            }
            Op::Read { file } => {
                if let Some(want) = model.get(&fname(file)) {
                    let h = client
                        .open(&fname(file), AccessMode::Read, QosOptions::best_effort())
                        .unwrap();
                    assert_eq!(&client.read(&h).unwrap(), want, "mid-schedule read");
                    client.close(h).unwrap();
                }
            }
        }
    }
    assert_eq!(sys.pool_outstanding_bytes(), 0, "schedule leaked buffers");
}

/// Everything an outside observer can see of the committed state.
type Observed = (
    Vec<String>,
    Vec<(String, Vec<(usize, Vec<u32>)>, Vec<u32>, Vec<u8>)>,
    Vec<u64>,
);

fn observe(sys: &System, client: &Client) -> Observed {
    let files = sys.list_files();
    let mut per_file = Vec::new();
    for name in &files {
        let meta = sys.export_meta(name).unwrap();
        let mut odd: Vec<u32> = meta.odd_keys.iter().copied().collect();
        odd.sort_unstable();
        let h = client
            .open(name, AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        let bytes = client.read(&h).unwrap();
        client.close(h).unwrap();
        per_file.push((name.clone(), meta.layout.clone(), odd, bytes));
    }
    let used = (0..DISKS).map(|d| sys.disk_used(d)).collect();
    (files, per_file, used)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded and whole-backend systems commit identical state for any
    /// serial schedule, and that state matches the plain-bytes model.
    #[test]
    fn sharded_matches_single_lock_backend(
        raw in proptest::collection::vec(
            ((0usize..4, 0usize..4), (1usize..24_000, any::<u8>(), any::<u16>())),
            1..10,
        ),
    ) {
        let ops = decode_ops(&raw);
        let sharded = make_system(true, 8, false);
        let whole = make_system(false, 8, false);
        let client_a = Client::connect(&sharded, sharded.register_user());
        let client_b = Client::connect(&whole, whole.register_user());
        let mut model_a = BTreeMap::new();
        let mut model_b = BTreeMap::new();
        run_schedule(&sharded, &client_a, &ops, &mut model_a);
        run_schedule(&whole, &client_b, &ops, &mut model_b);
        prop_assert_eq!(&model_a, &model_b);

        let got_sharded = observe(&sharded, &client_a);
        let got_whole = observe(&whole, &client_b);
        prop_assert_eq!(&got_sharded, &got_whole, "sharded backend diverged");

        // And both agree with the model's view of the world.
        let live: Vec<String> = model_a.keys().cloned().collect();
        prop_assert_eq!(&got_sharded.0, &live);
        for (name, _, _, bytes) in &got_sharded.1 {
            prop_assert_eq!(bytes, model_a.get(name).unwrap());
        }
    }

    /// Group commit batch size is invisible in the committed state: any
    /// schedule lands identically with batching off, default, and large.
    #[test]
    fn group_commit_batch_size_is_invisible(
        raw in proptest::collection::vec(
            ((0usize..4, 0usize..4), (1usize..24_000, any::<u8>(), any::<u16>())),
            1..8,
        ),
        batch in 2usize..32,
    ) {
        let ops = decode_ops(&raw);
        let mut states = Vec::new();
        for gc in [1usize, 8, batch] {
            let sys = make_system(true, gc, false);
            let client = Client::connect(&sys, sys.register_user());
            let mut model = BTreeMap::new();
            run_schedule(&sys, &client, &ops, &mut model);
            states.push(observe(&sys, &client));
        }
        prop_assert_eq!(&states[0], &states[1]);
        prop_assert_eq!(&states[1], &states[2]);
    }

    /// The async I/O ring is a pure performance refactor over the
    /// blocking sharded path: any serial schedule commits byte-identical
    /// state — same file listing, layouts, generation parity, read-back
    /// bytes, and per-disk byte counts — with the ring on or off.
    #[test]
    fn io_ring_matches_blocking_path(
        raw in proptest::collection::vec(
            ((0usize..4, 0usize..4), (1usize..24_000, any::<u8>(), any::<u16>())),
            1..10,
        ),
    ) {
        let ops = decode_ops(&raw);
        let ring = make_system(true, 8, true);
        let blocking = make_system(true, 8, false);
        let client_a = Client::connect(&ring, ring.register_user());
        let client_b = Client::connect(&blocking, blocking.register_user());
        let mut model_a = BTreeMap::new();
        let mut model_b = BTreeMap::new();
        run_schedule(&ring, &client_a, &ops, &mut model_a);
        run_schedule(&blocking, &client_b, &ops, &mut model_b);
        prop_assert_eq!(&model_a, &model_b);

        let got_ring = observe(&ring, &client_a);
        let got_blocking = observe(&blocking, &client_b);
        prop_assert_eq!(&got_ring, &got_blocking, "io ring diverged");

        let live: Vec<String> = model_a.keys().cloned().collect();
        prop_assert_eq!(&got_ring.0, &live);
        for (name, _, _, bytes) in &got_ring.1 {
            prop_assert_eq!(bytes, model_a.get(name).unwrap());
        }
    }
}
