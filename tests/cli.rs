//! End-to-end tests of the `robustore` CLI binary: a durable store
//! exercised across separate process invocations.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_robustore")
}

fn temp_dir(tag: &str) -> PathBuf {
    let unique = format!(
        "robustore-cli-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    );
    let p = std::env::temp_dir().join(unique);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin()).args(args).output().expect("spawn CLI");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn full_lifecycle_across_invocations() {
    let dir = temp_dir("lifecycle");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();

    let (ok, out) = run(&["--store", store_s, "init", "--disks", "6"]);
    assert!(ok, "init failed: {out}");

    // A payload with non-trivial content and a size that is not a block
    // multiple.
    let payload: Vec<u8> = (0..777_777u32).map(|i| (i % 251) as u8).collect();
    let src = dir.join("payload.bin");
    std::fs::write(&src, &payload).unwrap();

    let (ok, out) = run(&[
        "--store",
        store_s,
        "put",
        src.to_str().unwrap(),
        "--name",
        "proj/payload",
        "--redundancy",
        "2",
    ]);
    assert!(ok, "put failed: {out}");
    assert!(out.contains("coded blocks"), "{out}");

    // Listing and stat in fresh processes see the persisted metadata.
    let (ok, out) = run(&["--store", store_s, "ls"]);
    assert!(ok && out.contains("proj/payload"), "{out}");
    let (ok, out) = run(&["--store", store_s, "stat", "proj/payload"]);
    assert!(ok && out.contains("777777 bytes"), "{out}");

    // Retrieval round-trips the bytes exactly.
    let dst = dir.join("back.bin");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "proj/payload",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "get failed: {out}");
    assert!(out.contains("left unread"), "speculative accounting: {out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    // Removal drops the file from later invocations.
    let (ok, out) = run(&["--store", store_s, "rm", "proj/payload"]);
    assert!(ok, "rm failed: {out}");
    let (ok, out) = run(&["--store", store_s, "get", "proj/payload"]);
    assert!(!ok, "get after rm should fail: {out}");
    let (ok, out) = run(&["--store", store_s, "ls"]);
    assert!(ok && !out.contains("proj/payload"), "{out}");

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn get_survives_losing_disks_up_to_redundancy() {
    let dir = temp_dir("degraded");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    run(&["--store", store_s, "init", "--disks", "6"]);

    let payload = vec![0xA7u8; 500_000];
    let src = dir.join("p.bin");
    std::fs::write(&src, &payload).unwrap();
    let (ok, out) = run(&[
        "--store",
        store_s,
        "put",
        src.to_str().unwrap(),
        "--name",
        "x",
        "--redundancy",
        "3",
    ]);
    assert!(ok, "{out}");

    // Simulate a lost disk by deleting its directory contents.
    std::fs::remove_dir_all(store.join("disk-0")).unwrap();
    std::fs::create_dir_all(store.join("disk-0")).unwrap();

    let dst = dir.join("x.out");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "x",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "degraded get failed: {out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn v2_sidecars_without_checksums_still_read_and_scrub_upgrades_them() {
    // Forward-compat: a store written before sidecar v3 has no `crc`
    // lines. Reads must still work (blocks are just unverified), and one
    // `scrub` pass must rewrite the sidecar as v3 with a full digest map.
    let dir = temp_dir("v2compat");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    run(&["--store", store_s, "init", "--disks", "6"]);

    let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 241) as u8).collect();
    let src = dir.join("p.bin");
    std::fs::write(&src, &payload).unwrap();
    let (ok, out) = run(&[
        "--store",
        store_s,
        "put",
        src.to_str().unwrap(),
        "--name",
        "old",
    ]);
    assert!(ok, "{out}");

    // Downgrade the sidecar to v2 by hand: drop the crc lines and the
    // header version, exactly what a pre-checksum binary wrote.
    let meta_dir = store.join("metadata");
    let sidecar = std::fs::read_dir(&meta_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.path().extension().is_some_and(|x| x == "meta"))
        .unwrap()
        .path();
    let v3 = std::fs::read_to_string(&sidecar).unwrap();
    assert!(v3.starts_with("robustore-meta-v3"), "{v3}");
    assert!(v3.contains("\ncrc="), "{v3}");
    let v2: String = v3
        .replace("robustore-meta-v3", "robustore-meta-v2")
        .lines()
        .filter(|l| !l.starts_with("crc="))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&sidecar, v2).unwrap();

    // A fresh process reads the v2 store fine.
    let dst = dir.join("old.out");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "old",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "v2 get failed: {out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    // Scrub upgrades: sidecar is v3 again, with one digest per stored
    // block, and the file still round-trips.
    let (ok, out) = run(&["--store", store_s, "scrub"]);
    assert!(ok, "scrub failed: {out}");
    assert!(out.contains("checksums"), "{out}");
    let upgraded = std::fs::read_to_string(&sidecar).unwrap();
    assert!(upgraded.starts_with("robustore-meta-v3"), "{upgraded}");
    assert!(upgraded.contains("\ncrc="), "{upgraded}");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "old",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn scrub_heals_bit_rot_on_a_durable_store() {
    // Flip bytes inside block files at rest; a get without scrubbing must
    // still return correct bytes (checksums catch the rot), and a scrub
    // must restore the store so the damage stops accumulating.
    let dir = temp_dir("rot");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    run(&["--store", store_s, "init", "--disks", "6"]);

    let payload = vec![0x5Au8; 400_000];
    let src = dir.join("p.bin");
    std::fs::write(&src, &payload).unwrap();
    let (ok, out) = run(&[
        "--store",
        store_s,
        "put",
        src.to_str().unwrap(),
        "--name",
        "x",
        "--redundancy",
        "3",
    ]);
    assert!(ok, "{out}");

    // Rot every block on one disk: flip a byte in each .blk file.
    let disk = store.join("disk-2");
    let mut rotted = 0;
    for entry in std::fs::read_dir(&disk).unwrap().filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.extension().is_some_and(|x| x == "blk") {
            let mut bytes = std::fs::read(&p).unwrap();
            bytes[0] ^= 0xFF;
            std::fs::write(&p, &bytes).unwrap();
            rotted += 1;
        }
    }
    assert!(rotted > 0, "nothing stored on disk-2");

    let dst = dir.join("x.out");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "x",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "rotten get failed: {out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    let (ok, out) = run(&["--store", store_s, "scrub", "x"]);
    assert!(ok, "scrub failed: {out}");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "x",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "{out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn unknown_command_and_missing_store_fail_cleanly() {
    let (ok, _) = run(&["--store", "/nonexistent-robustore", "frobnicate"]);
    assert!(!ok);
    let (ok, out) = run(&["--store", "/nonexistent-robustore", "ls"]);
    assert!(!ok);
    assert!(out.contains("no store"), "{out}");
}

#[test]
fn torn_and_legacy_sidecars_surface_clean_errors_not_panics() {
    // Forward-compat under truncation: whatever state a crash or an old
    // binary leaves a sidecar in — v1 header, half a header, a file cut
    // mid-line, a missing field, an empty file — the store must open,
    // warn precisely, keep serving the healthy files, and fail the
    // damaged file's reads cleanly. Never a panic, never a silently
    // empty meta.
    let dir = temp_dir("torn");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    run(&["--store", store_s, "init", "--disks", "6"]);

    let payload = vec![0x3Cu8; 200_000];
    let src = dir.join("p.bin");
    std::fs::write(&src, &payload).unwrap();
    for name in ["good", "victim"] {
        let (ok, out) = run(&[
            "--store",
            store_s,
            "put",
            src.to_str().unwrap(),
            "--name",
            name,
        ]);
        assert!(ok, "{out}");
    }

    // Find the victim's sidecar by content (paths are name-hashed).
    let sidecar = std::fs::read_dir(store.join("metadata"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.extension().is_some_and(|x| x == "meta")
                && std::fs::read_to_string(p).is_ok_and(|t| t.contains("name=victim"))
        })
        .unwrap();
    let pristine = std::fs::read_to_string(&sidecar).unwrap();
    assert!(pristine.starts_with("robustore-meta-v3"), "{pristine}");

    let v2: String = pristine
        .replace("robustore-meta-v3", "robustore-meta-v2")
        .lines()
        .filter(|l| !l.starts_with("crc="))
        .map(|l| format!("{l}\n"))
        .collect();
    // (mangled sidecar bytes, error text the warning must carry)
    let cases: Vec<(String, &str)> = vec![
        // v1: refused outright — its block keys would misaddress.
        (
            pristine.replace("robustore-meta-v3", "robustore-meta-v1"),
            "v1 sidecar",
        ),
        // Torn mid-header: unrecognised version string.
        (pristine[..9].to_string(), "unrecognised sidecar header"),
        // Future version: must be refused, not guessed at.
        (
            pristine.replace("robustore-meta-v3", "robustore-meta-v9"),
            "unrecognised sidecar header",
        ),
        // Truncated after a few fields: a required field is missing.
        (
            pristine.lines().take(3).map(|l| format!("{l}\n")).collect(),
            "truncated sidecar: missing",
        ),
        // A v2 sidecar cut mid-line: the torn line is named.
        (
            {
                let cut = v2.rfind('=').unwrap();
                v2[..cut].to_string()
            },
            "malformed line",
        ),
        // Zero bytes (crash before the first write hit the disk).
        (String::new(), "empty sidecar"),
    ];

    for (bytes, why) in cases {
        std::fs::write(&sidecar, &bytes).unwrap();

        // The store opens, warns about the one bad sidecar, and still
        // lists the healthy file.
        let (ok, out) = run(&["--store", store_s, "ls"]);
        assert!(ok, "ls must survive a bad sidecar ({why}): {out}");
        assert!(!out.contains("panicked"), "panic leaked ({why}): {out}");
        assert!(
            out.contains("warning: skipping sidecar") && out.contains(why),
            "expected a warning naming {why:?}: {out}"
        );
        assert!(out.contains("good"), "healthy file vanished ({why}): {out}");
        assert!(
            !out.contains("victim"),
            "untrusted meta served ({why}): {out}"
        );

        // Reading the damaged file fails cleanly in a fresh process.
        let dst = dir.join("v.out");
        let (ok, out) = run(&[
            "--store",
            store_s,
            "get",
            "victim",
            "--out",
            dst.to_str().unwrap(),
        ]);
        assert!(!ok, "get of a torn-sidecar file must fail ({why}): {out}");
        assert!(!out.contains("panicked"), "panic leaked ({why}): {out}");

        // The healthy file still round-trips bit-exact.
        let dst = dir.join("g.out");
        let (ok, out) = run(&[
            "--store",
            store_s,
            "get",
            "good",
            "--out",
            dst.to_str().unwrap(),
        ]);
        assert!(ok, "healthy get failed ({why}): {out}");
        assert_eq!(std::fs::read(&dst).unwrap(), payload, "({why})");
    }

    // Restoring the pristine sidecar restores the file: the damage was
    // never destructive, only distrusted.
    std::fs::write(&sidecar, &pristine).unwrap();
    let dst = dir.join("v.out");
    let (ok, out) = run(&[
        "--store",
        store_s,
        "get",
        "victim",
        "--out",
        dst.to_str().unwrap(),
    ]);
    assert!(ok, "restored sidecar must serve again: {out}");
    assert_eq!(std::fs::read(&dst).unwrap(), payload);

    std::fs::remove_dir_all(dir).ok();
}
