//! Property and differential tests for the read wave policy
//! (`SystemConfig::read_policy`).
//!
//! The wave scheduler ([`AdaptiveReadPolicy`]) decides *order* and
//! *pacing* of speculative block requests — never their content — so its
//! contract splits cleanly in two:
//!
//! * **Schedule properties** (proptest): every schedule is a permutation
//!   of the plan's stored blocks (no invented or dropped requests, so a
//!   wave can only touch the plan's own disks), an empty load map
//!   degenerates to the static schedule bit for bit, a quiescent load
//!   map preserves the static *order*, the first wave respects the
//!   planner's availability-class mixing rule, and scheduling is a pure
//!   function of its inputs.
//! * **Policy differential** (seeded faults): under identical damage —
//!   lost blocks, bit rot, an offline-disk window — the adaptive policy
//!   decodes byte-identical data to the static policy and the blocking
//!   oracle, one access at a time, batched, and open-loop paced. Only
//!   decoded bytes are compared: which spare blocks get read-repaired is
//!   legitimately order-sensitive (see `tests/ring_chaos.rs`, which pins
//!   the committed state with the policy held static).

use proptest::prelude::*;
use robustore::core::{AccessMode, Client, QosOptions, ReadPolicy, Scrubber, System, SystemConfig};
use robustore::schemes::{AdaptiveReadPolicy, DiskLoad, DiskLoadMap, WaveSlot};
use robustore::simkit::SeedSequence;

/// Deterministic random scheduling case: up to 8 disks, each holding up
/// to 12 blocks, with varied nominal speeds, availabilities drawn from
/// two bands, and a load map mixing idle and backlogged disks.
fn gen_case(seed: u64) -> (Vec<WaveSlot>, usize, DiskLoadMap) {
    let mut rng = SeedSequence::new(seed).fork("case", 0);
    let mut next = || rand::Rng::gen::<u64>(&mut rng);
    let ndisks = 2 + (next() % 7) as usize;
    let slots: Vec<WaveSlot> = (0..ndisks)
        .map(|d| WaveSlot {
            disk: d,
            blocks: (next() % 13) as usize,
            nominal_micros: 50.0 + (next() % 1000) as f64,
            availability: if next() % 2 == 0 { 0.99 } else { 0.90 },
        })
        .collect();
    let total: usize = slots.iter().map(|s| s.blocks).sum();
    let k = 1 + (next() % (total.max(1) as u64 * 2)) as usize;
    let loads: Vec<DiskLoad> = (0..ndisks)
        .map(|_| DiskLoad {
            queued: next() % 20,
            in_flight: next() % 3,
            ewma_service_micros: (next() % 4000) as f64,
        })
        .collect();
    (slots, k, DiskLoadMap::from_loads(loads))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every adaptive schedule requests each stored block exactly once
    /// and nothing else — so a wave can only ever touch the plan's own
    /// disks — with a sane wave structure.
    #[test]
    fn adaptive_order_is_a_permutation_of_the_plan(seed in any::<u64>()) {
        let (slots, k, load) = gen_case(seed);
        let sched = AdaptiveReadPolicy::default().schedule(&slots, k, &load);
        let total: usize = slots.iter().map(|s| s.blocks).sum();
        let mut seen = sched.order.clone();
        seen.sort_unstable();
        let mut expect = Vec::new();
        for (s, ws) in slots.iter().enumerate() {
            for idx in 0..ws.blocks {
                expect.push((s, idx));
            }
        }
        prop_assert_eq!(seen, expect, "order is not a permutation of the plan");
        prop_assert!(sched.first_wave <= total);
        prop_assert!(total == 0 || sched.first_wave >= 1);
        prop_assert!(sched.topup >= 1);
        if sched.first_wave == total {
            prop_assert_eq!(sched.deadline_micros, None);
        }
    }

    /// An empty load map — no ring, no telemetry — degenerates to the
    /// static schedule exactly: same order, everything in one wave, no
    /// deadline.
    #[test]
    fn empty_load_map_degenerates_to_static(seed in any::<u64>()) {
        let (slots, k, _) = gen_case(seed);
        let adaptive = AdaptiveReadPolicy::default()
            .schedule(&slots, k, &DiskLoadMap::empty());
        prop_assert_eq!(adaptive, AdaptiveReadPolicy::static_schedule(&slots));
    }

    /// A *present but quiescent* load map (all zeros, uniform
    /// availability so the mixing rule is a no-op) preserves the static
    /// order: the ring's telemetry only changes behaviour once it has
    /// observed real load. This is the invariant that lets the adaptive
    /// policy ship default-on without perturbing idle-system replays.
    #[test]
    fn quiescent_load_map_preserves_static_order(seed in any::<u64>()) {
        let (mut slots, k, _) = gen_case(seed);
        for s in &mut slots {
            s.availability = 0.99;
        }
        let quiet = DiskLoadMap::from_loads(vec![DiskLoad::default(); slots.len()]);
        let adaptive = AdaptiveReadPolicy::default().schedule(&slots, k, &quiet);
        let oracle = AdaptiveReadPolicy::static_schedule(&slots);
        prop_assert_eq!(adaptive.order, oracle.order);
    }

    /// The planner's mixing rule holds on the first wave: whenever both
    /// availability classes (median split over block-holding slots) hold
    /// blocks and the wave has room for two entries, the wave touches
    /// both classes.
    #[test]
    fn first_wave_mixes_availability_classes(seed in any::<u64>()) {
        let (slots, k, load) = gen_case(seed);
        let sched = AdaptiveReadPolicy::default().schedule(&slots, k, &load);
        if sched.first_wave < 2 {
            return Ok(());
        }
        let mut avails: Vec<f64> = slots
            .iter()
            .filter(|s| s.blocks > 0)
            .map(|s| s.availability)
            .collect();
        if avails.len() < 2 {
            return Ok(());
        }
        avails.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = avails[avails.len() / 2];
        let is_high = |slot: usize| slots[slot].availability >= median;
        for class_high in [false, true] {
            let exists = slots
                .iter()
                .enumerate()
                .any(|(i, s)| s.blocks > 0 && is_high(i) == class_high);
            if exists {
                prop_assert!(
                    sched.order[..sched.first_wave]
                        .iter()
                        .any(|&(s, _)| is_high(s) == class_high),
                    "first wave missing availability class high={class_high}"
                );
            }
        }
    }

    /// Scheduling is a pure function: the same slots, k, and load map
    /// produce the identical schedule.
    #[test]
    fn schedule_is_deterministic(seed in any::<u64>()) {
        let (slots, k, load) = gen_case(seed);
        let policy = AdaptiveReadPolicy::default();
        prop_assert_eq!(
            policy.schedule(&slots, k, &load),
            policy.schedule(&slots, k, &load)
        );
    }
}

// ---------------------------------------------------------------------
// Seeded-fault differential: adaptive vs static vs blocking, decoded
// bytes only.
// ---------------------------------------------------------------------

const DISKS: usize = 8;

fn policy_system(io_ring: bool, policy: ReadPolicy) -> System {
    System::with_backend(
        Box::new(robustore::core::InMemoryBackend::new(
            (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect(),
        )),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            pipeline_depth: 4,
            io_ring,
            read_policy: policy,
            ..Default::default()
        },
    )
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + salt as usize) % 256) as u8)
        .collect()
}

/// One full run under one policy: write, damage, read singly, scrub,
/// read as a paced batch. Returns every decoded byte vector in a fixed
/// order.
fn faulted_decodes(io_ring: bool, policy: ReadPolicy, fault_seed: u64) -> Vec<Vec<u8>> {
    let sys = policy_system(io_ring, policy);
    let client = Client::connect(&sys, sys.register_user());
    let names = ["alpha", "beta", "gamma"];
    for (i, name) in names.iter().enumerate() {
        let mut h = client
            .open(name, AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client
            .write(&mut h, &payload(120_000 + 20_000 * i, i as u8 + 7))
            .unwrap();
        client.close(h).unwrap();
    }

    let seq = SeedSequence::new(fault_seed);
    sys.lose_blocks(2, 0.5, &seq.subsequence("lose", 0));
    sys.corrupt_blocks(5, 0.4, &seq.subsequence("rot", 0));
    sys.set_disk_offline(1, true);

    let mut decoded = Vec::new();
    // Degraded reads, one access at a time (this also seeds the ring's
    // EWMA estimators with real service times, so the batched pass below
    // exercises a genuinely non-quiescent adaptive schedule).
    for name in &names {
        let h = client
            .open(name, AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        decoded.push(client.read(&h).unwrap());
        client.close(h).unwrap();
    }
    sys.set_disk_offline(1, false);
    let sweep = Scrubber::new(&client).sweep();
    assert!(sweep.failed.is_empty(), "scrub failed: {:?}", sweep.failed);

    // Post-repair reads as one open-loop paced batch through the wave
    // scheduler (two accesses per file, staggered arrivals).
    let handles: Vec<_> = (0..2 * names.len())
        .map(|a| {
            client
                .open(
                    names[a % names.len()],
                    AccessMode::Read,
                    QosOptions::best_effort(),
                )
                .unwrap()
        })
        .collect();
    let handle_refs: Vec<_> = handles.iter().collect();
    let arrivals: Vec<u64> = (0..handle_refs.len() as u64).map(|a| a * 500).collect();
    let mut batch: Vec<Option<Vec<u8>>> = vec![None; handle_refs.len()];
    client.read_many_with(&handle_refs, Some(&arrivals), |i, r| {
        batch[i] = Some(r.expect("paced degraded read").0);
    });
    for h in handles {
        client.close(h).unwrap();
    }
    decoded.extend(batch.into_iter().map(|b| b.expect("every access resolved")));
    assert_eq!(sys.pool_outstanding_bytes(), 0, "reads leaked pool buffers");
    decoded
}

#[test]
fn adaptive_and_static_decode_identical_bytes_under_seeded_faults() {
    for fault_seed in [0xB0u64, 0xB1, 0xB2] {
        let adaptive = faulted_decodes(true, ReadPolicy::adaptive(), fault_seed);
        let static_ring = faulted_decodes(true, ReadPolicy::Static, fault_seed);
        let blocking = faulted_decodes(false, ReadPolicy::Static, fault_seed);
        // Ground truth first: every decode round-tripped the payloads.
        for run in [&adaptive, &static_ring, &blocking] {
            for (i, _) in ["alpha", "beta", "gamma"].iter().enumerate() {
                let want = payload(120_000 + 20_000 * i, i as u8 + 7);
                assert_eq!(run[i], want, "degraded decode wrong (seed {fault_seed:#x})");
                assert_eq!(run[3 + i], want, "post-scrub decode wrong");
                assert_eq!(run[6 + i], want, "post-scrub batch decode wrong");
            }
        }
        assert_eq!(
            adaptive, static_ring,
            "adaptive policy decoded different bytes (seed {fault_seed:#x})"
        );
        assert_eq!(
            static_ring, blocking,
            "ring static diverged from blocking oracle (seed {fault_seed:#x})"
        );
    }
}
