//! End-to-end tests of the RobuSTore framework API across crates:
//! client ↔ metadata ↔ planner ↔ admission ↔ erasure coding ↔ backend.

use std::sync::Arc;

use robustore::core::{
    AccessMode, Client, CredentialChain, InMemoryBackend, QosOptions, Rights, StoreError, System,
    SystemConfig,
};

fn system(disks: usize) -> System {
    let speeds: Vec<f64> = (0..disks).map(|i| 8e6 + (i as f64) * 7e6).collect();
    System::new(
        InMemoryBackend::new(speeds),
        SystemConfig {
            block_bytes: 16 << 10,
            ..Default::default()
        },
    )
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + salt as usize) % 256) as u8)
        .collect()
}

#[test]
fn many_files_roundtrip() {
    let sys = system(12);
    let user = sys.register_user();
    let client = Client::connect(&sys, user);
    let files: Vec<(String, Vec<u8>)> = (0..10)
        .map(|i| {
            (
                format!("data/file-{i}"),
                payload(30_000 + i * 7_000, i as u8),
            )
        })
        .collect();

    for (name, data) in &files {
        let mut h = client
            .open(name, AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        client.write(&mut h, data).unwrap();
        client.close(h).unwrap();
    }
    for (name, data) in &files {
        let h = client
            .open(name, AccessMode::Read, QosOptions::best_effort())
            .unwrap();
        assert_eq!(&client.read(&h).unwrap(), data, "{name}");
        client.close(h).unwrap();
    }
}

#[test]
fn concurrent_readers_across_threads() {
    let sys = system(8);
    let user = sys.register_user();
    let writer = Client::connect(&sys, user);
    let data = Arc::new(payload(200_000, 3));
    let mut h = writer
        .open("shared", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    writer.write(&mut h, &data).unwrap();
    writer.close(h).unwrap();

    // Many clients (same owner identity) read concurrently from threads;
    // the reader/writer lock admits them all and every copy matches.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let sys = sys.clone();
            let data = Arc::clone(&data);
            scope.spawn(move || {
                let reader = Client::connect(&sys, user);
                let h = reader
                    .open("shared", AccessMode::Read, QosOptions::best_effort())
                    .expect("shared read lock");
                assert_eq!(reader.read(&h).unwrap(), *data);
                reader.close(h).unwrap();
            });
        }
    });

    // With all readers gone, the writer lock is available again.
    let owner = Client::connect(&sys, user);
    let h = owner
        .open("shared", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    owner.close(h).unwrap();
}

#[test]
fn two_level_delegation_end_to_end() {
    // Figure C-1's scenario across the whole stack: admin → alice → bob.
    let sys = system(8);
    let admin = sys.register_user();
    let alice = sys.register_user();
    let bob = sys.register_user();

    let admin_client = Client::connect(&sys, admin);
    let data = payload(64_000, 9);
    let mut h = admin_client
        .open(
            "robustore_dir",
            AccessMode::Write,
            QosOptions::best_effort(),
        )
        .unwrap();
    admin_client.write(&mut h, &data).unwrap();
    admin_client.close(h).unwrap();

    // Admin delegates RW to Alice; Alice delegates R to Bob.
    let l1 = sys
        .issue_credential(admin, alice, Rights::R | Rights::W, "robustore_dir", 1_000)
        .unwrap();
    let l2 = sys
        .issue_credential(alice, bob, Rights::R, "robustore_dir", 1_000)
        .unwrap();
    let chain = CredentialChain(vec![l1.clone(), l2]);

    let bob_client = Client::connect(&sys, bob);
    let h = bob_client
        .open_with_chain(
            "robustore_dir",
            AccessMode::Read,
            QosOptions::best_effort(),
            &chain,
        )
        .unwrap();
    assert_eq!(bob_client.read(&h).unwrap(), data);
    bob_client.close(h).unwrap();

    // Bob cannot write through an R-only tail link.
    assert!(matches!(
        bob_client.open_with_chain(
            "robustore_dir",
            AccessMode::Write,
            QosOptions::best_effort(),
            &chain
        ),
        Err(StoreError::AccessDenied(_))
    ));

    // Alice herself can write with her single-link chain.
    let alice_client = Client::connect(&sys, alice);
    let chain1 = CredentialChain(vec![l1]);
    let mut h = alice_client
        .open_with_chain(
            "robustore_dir",
            AccessMode::Write,
            QosOptions::best_effort(),
            &chain1,
        )
        .unwrap();
    alice_client.write(&mut h, &payload(32_000, 11)).unwrap();
    alice_client.close(h).unwrap();
}

#[test]
fn qos_disk_count_is_respected() {
    let sys = system(16);
    let user = sys.register_user();
    let client = Client::connect(&sys, user);
    let mut h = client
        .open(
            "narrow",
            AccessMode::Write,
            QosOptions::best_effort()
                .with_num_disks(4)
                .with_redundancy(2.0),
        )
        .unwrap();
    client.write(&mut h, &payload(100_000, 1)).unwrap();
    let meta = h.meta().unwrap().clone();
    client.close(h).unwrap();
    let used: Vec<usize> = meta
        .layout
        .iter()
        .filter(|(_, ids)| !ids.is_empty())
        .map(|(d, _)| *d)
        .collect();
    assert!(used.len() <= 4, "QoS asked for 4 disks, used {used:?}");
    let k = meta.coding.k as f64;
    let n = meta.coding.n as f64;
    assert!((n / k - 3.0).abs() < 0.1, "redundancy 2.0 → N = 3K");
}

#[test]
fn updates_preserve_unpatched_bytes_across_many_patches() {
    let sys = system(8);
    let user = sys.register_user();
    let client = Client::connect(&sys, user);
    let mut expect = payload(128_000, 5);
    let mut h = client
        .open("patchy", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, &expect).unwrap();

    for (i, (off, len)) in [
        (0usize, 100usize),
        (50_000, 3_000),
        (127_000, 1_000),
        (16_384, 16_384),
    ]
    .into_iter()
    .enumerate()
    {
        let patch: Vec<u8> = (0..len).map(|j| ((i * 37 + j) % 256) as u8).collect();
        client.update(&mut h, off as u64, &patch).unwrap();
        expect[off..off + len].copy_from_slice(&patch);
    }
    client.close(h).unwrap();

    let h = client
        .open("patchy", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert_eq!(client.read(&h).unwrap(), expect);
    client.close(h).unwrap();
}

#[test]
fn degraded_read_survives_offline_disks() {
    // §4.1.3: lose servers after the write; redundancy absorbs it.
    let sys = system(8);
    let user = sys.register_user();
    let client = Client::connect(&sys, user);
    let data = payload(160_000, 7);
    let mut h = client
        .open(
            "resilient",
            AccessMode::Write,
            QosOptions::best_effort().with_redundancy(3.0),
        )
        .unwrap();
    client.write(&mut h, &data).unwrap();
    client.close(h).unwrap();

    // Take two of eight disks offline.
    sys.set_disk_offline(0, true);
    sys.set_disk_offline(3, true);
    let h = client
        .open("resilient", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert_eq!(client.read(&h).unwrap(), data, "degraded read");
    client.close(h).unwrap();

    // Take too many offline: the read reports failure instead of wrong data.
    for d in 0..7 {
        sys.set_disk_offline(d, true);
    }
    let h = client
        .open("resilient", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert!(client.read(&h).is_err(), "insufficient blocks must error");
    client.close(h).unwrap();

    // Recovery: bring the disks back and the data is intact.
    for d in 0..8 {
        sys.set_disk_offline(d, false);
    }
    let h = client
        .open("resilient", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert_eq!(client.read(&h).unwrap(), data);
    client.close(h).unwrap();
}

#[test]
fn rateless_write_routes_around_offline_disk() {
    let sys = system(8);
    let user = sys.register_user();
    let client = Client::connect(&sys, user);
    sys.set_disk_offline(2, true);
    let data = payload(120_000, 9);
    let mut h = client
        .open(
            "writable",
            AccessMode::Write,
            QosOptions::best_effort().with_redundancy(2.0),
        )
        .unwrap();
    client.write(&mut h, &data).unwrap();
    let meta = h.meta().unwrap().clone();
    client.close(h).unwrap();
    // No blocks landed on the dead disk; total block count is preserved.
    let on_dead: usize = meta
        .layout
        .iter()
        .filter(|(d, _)| *d == 2)
        .map(|(_, ids)| ids.len())
        .sum();
    assert_eq!(on_dead, 0);
    assert_eq!(meta.stored_blocks(), meta.coding.n);
    // And the data reads back (dead disk still down).
    let h = client
        .open("writable", AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    assert_eq!(client.read(&h).unwrap(), data);
    client.close(h).unwrap();
}

#[test]
fn out_of_range_update_rejected() {
    let sys = system(8);
    let user = sys.register_user();
    let client = Client::connect(&sys, user);
    let mut h = client
        .open("f", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, &payload(10_000, 1)).unwrap();
    assert!(matches!(
        client.update(&mut h, 9_990, &[0u8; 100]),
        Err(StoreError::OutOfRange)
    ));
    client.close(h).unwrap();
}
