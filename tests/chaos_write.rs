//! Chaos suite for the crash-consistent write path.
//!
//! Every test drives a real [`System`] through a [`ChaosBackend`] armed
//! with deterministic, seeded write faults ([`WriteFaultPlan`]) and then
//! asserts the commit-or-rollback contract of the overwrite protocol:
//!
//! * **commit** — the new version is fully readable and the old one is
//!   garbage-collected, or
//! * **rollback** — the access errors, the *previous* version is still
//!   bit-identical and readable, and no partially written block survives
//!   anywhere (backend byte counts return to their pre-access snapshot).
//!
//! In both outcomes the shared buffer pool must account for every byte
//! (`pool_outstanding_bytes() == 0`).

use robustore::core::{
    AccessMode, ChaosBackend, Client, FaultSwitch, InMemoryBackend, QosOptions, StoreError, System,
    SystemConfig,
};
use robustore::simkit::{SeedSequence, WriteFaultPlan, WriteFaultScenario};

const DISKS: usize = 8;

fn chaos_system() -> (System, FaultSwitch) {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 10e6 + i as f64 * 6e6).collect();
    let (backend, switch) = ChaosBackend::new(InMemoryBackend::new(speeds));
    let sys = System::with_backend(
        Box::new(backend),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 4,
            pipeline_depth: 8,
            ..Default::default()
        },
    );
    (sys, switch)
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + salt as usize) % 256) as u8)
        .collect()
}

fn used_snapshot(sys: &System) -> Vec<u64> {
    (0..DISKS).map(|d| sys.disk_used(d)).collect()
}

/// Write `data` as `name`, asserting success, and return the handle-free
/// system state to build on.
fn put(sys: &System, client: &Client, name: &str, data: &[u8]) {
    let mut h = client
        .open(name, AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, data).unwrap();
    client.close(h).unwrap();
    let _ = sys; // signature keeps call sites symmetric with read_back
}

fn read_back(sys: &System, client: &Client, name: &str) -> Vec<u8> {
    let h = client
        .open(name, AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let got = client.read(&h).unwrap();
    client.close(h).unwrap();
    assert_eq!(sys.pool_outstanding_bytes(), 0, "read leaked pool buffers");
    got
}

#[test]
fn failed_overwrite_preserves_previous_version() {
    // THE data-loss regression: an overwrite that dies mid-write must
    // leave the committed version untouched. Before the commit protocol,
    // the old generation was deleted *first*, so this exact sequence
    // destroyed the only copy.
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let v1 = payload(150_000, 1);
    put(&sys, &client, "precious", &v1);
    let snapshot = used_snapshot(&sys);

    // Disk 2 accepts three more blocks, then fails hard mid-access.
    switch.fail_disk_after(2, 3);
    let v2 = payload(180_000, 2);
    let mut h = client
        .open("precious", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    let err = client.write(&mut h, &v2).unwrap_err();
    assert!(matches!(err, StoreError::DiskFault { disk: 2 }), "{err:?}");
    client.close(h).unwrap();
    switch.clear();

    // Rollback: previous version bit-identical, zero orphans.
    assert_eq!(read_back(&sys, &client, "precious"), v1);
    assert_eq!(
        used_snapshot(&sys),
        snapshot,
        "aborted overwrite changed on-disk state"
    );
    assert_eq!(sys.pool_outstanding_bytes(), 0);

    // And the retry (fault cleared) commits normally.
    let mut h = client
        .open("precious", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, &v2).unwrap();
    client.close(h).unwrap();
    assert_eq!(read_back(&sys, &client, "precious"), v2);
}

#[test]
fn failed_first_write_leaves_no_orphans() {
    // The storage-leak regression: an error partway through a *first*
    // write used to return with every already-written block stranded on
    // the disks (no metadata referenced them, nothing ever deleted them).
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    switch.fail_disk_after(5, 2);

    let mut h = client
        .open("fresh", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    let err = client.write(&mut h, &payload(120_000, 3)).unwrap_err();
    assert!(matches!(err, StoreError::DiskFault { disk: 5 }));
    client.close(h).unwrap();

    assert_eq!(sys.total_used(), 0, "aborted first write left orphans");
    let (_, writes) = sys.backend_stats();
    assert!(writes > 0, "the fault fired mid-access, not before it");
    assert_eq!(sys.pool_outstanding_bytes(), 0);
}

#[test]
fn refusing_disks_reroute_without_reencoding() {
    // Refusals are routine for a rateless write: the displaced blocks move
    // to healthy disks (reusing their already-encoded bytes) and the
    // access commits. The refused disks must hold zero bytes.
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let seq = SeedSequence::new(77);
    let plan = WriteFaultPlan::generate(&WriteFaultScenario::RefusingDisks { n: 3 }, DISKS, &seq);
    switch.apply(&plan);

    let data = payload(200_000, 4);
    let mut h = client
        .open("routed", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, &data).unwrap();
    let meta = h.meta().unwrap().clone();
    client.close(h).unwrap();

    for fault in &plan.faults {
        assert_eq!(
            sys.disk_used(fault.disk),
            0,
            "refused disk {} holds data",
            fault.disk
        );
        let ids = meta
            .layout
            .iter()
            .find(|(d, _)| *d == fault.disk)
            .map(|(_, ids)| ids.len())
            .unwrap_or(0);
        assert_eq!(ids, 0, "layout still assigns blocks to a refused disk");
    }
    // Every planned block landed somewhere: commit is complete.
    assert_eq!(
        sys.total_used(),
        meta.stored_blocks() as u64 * meta.coding.block_bytes
    );
    switch.clear();
    assert_eq!(read_back(&sys, &client, "routed"), data);
}

#[test]
fn all_disks_refusing_fails_cleanly() {
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let seq = SeedSequence::new(5);
    let plan = WriteFaultPlan::generate(&WriteFaultScenario::AllRefuse, DISKS, &seq);
    assert_eq!(plan.faults.len(), DISKS);
    switch.apply(&plan);

    let mut h = client
        .open("nowhere", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    let err = client.write(&mut h, &payload(90_000, 5)).unwrap_err();
    assert!(
        matches!(err, StoreError::InsufficientDisks { .. }),
        "{err:?}"
    );
    client.close(h).unwrap();
    assert_eq!(sys.total_used(), 0);
    assert_eq!(sys.pool_outstanding_bytes(), 0);
    assert!(!sys.list_files().contains(&"nowhere".to_string()));
}

#[test]
fn failed_update_preserves_committed_version() {
    // Updates are copy-on-write too: a mid-update hard fault rolls back
    // the flipped-parity blocks and the committed content stays intact.
    let (sys, switch) = chaos_system();
    let client = Client::connect(&sys, sys.register_user());
    let base = payload(160_000, 6);
    put(&sys, &client, "doc", &base);
    let snapshot = used_snapshot(&sys);

    // Recompute the update's dirty coded blocks from the committed coding
    // spec, and arm the disk holding the *last* of them with a budget of
    // its earlier dirty writes — so the fault fires on the final dirty
    // write, after real partial progress that rollback must undo.
    let meta = sys.export_meta("doc").unwrap();
    let spec = meta.coding.clone();
    let code =
        robustore::erasure::lt::LtCode::plan(spec.k, spec.n, spec.params, spec.seed).unwrap();
    let first = (10_000u64 / spec.block_bytes) as usize;
    let last = ((10_000u64 + 4_000 - 1) / spec.block_bytes) as usize;
    let mut dirty: Vec<u32> = (first..=last)
        .flat_map(|o| code.blocks_touching(o))
        .map(|j| j as u32)
        .collect();
    dirty.sort_unstable();
    dirty.dedup();
    assert!(dirty.len() > 1, "patch must dirty several coded blocks");
    let disk_of = |id: u32| {
        meta.layout
            .iter()
            .find(|(_, ids)| ids.contains(&id))
            .map(|(d, _)| *d)
            .expect("dirty block is in the layout")
    };
    let target = disk_of(*dirty.last().unwrap());
    let budget = dirty[..dirty.len() - 1]
        .iter()
        .filter(|&&id| disk_of(id) == target)
        .count() as u64;
    switch.fail_disk_after(target, budget);

    let mut h = client
        .open("doc", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    let err = client
        .update(&mut h, 10_000, &vec![0xEE; 4_000])
        .unwrap_err();
    assert!(
        matches!(err, StoreError::DiskFault { disk } if disk == target),
        "{err:?}"
    );
    client.close(h).unwrap();
    switch.clear();

    assert_eq!(read_back(&sys, &client, "doc"), base);
    assert_eq!(used_snapshot(&sys), snapshot);

    // Cleared fault: the same update commits, old blocks GC'd.
    let mut h = client
        .open("doc", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.update(&mut h, 10_000, &vec![0xEE; 4_000]).unwrap();
    client.close(h).unwrap();
    let mut want = base;
    want[10_000..14_000].copy_from_slice(&vec![0xEE; 4_000]);
    assert_eq!(read_back(&sys, &client, "doc"), want);
    assert_eq!(
        used_snapshot(&sys),
        snapshot,
        "update changed the stored block count"
    );
}

#[test]
fn seeded_fault_plans_replay_identically() {
    // The whole suite is reproducible end to end: the same seed produces
    // the same fault schedule, the same aborted access, and the same
    // final on-disk state.
    let run = |seed: u64| {
        let (sys, switch) = chaos_system();
        let client = Client::connect(&sys, sys.register_user());
        let data = payload(130_000, 7);
        put(&sys, &client, "replay", &data);
        let seq = SeedSequence::new(seed);
        let plan = WriteFaultPlan::generate(
            &WriteFaultScenario::MidWriteFailure { after: 4 },
            DISKS,
            &seq,
        );
        switch.apply(&plan);
        let mut h = client
            .open("replay", AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        let outcome = client.write(&mut h, &payload(130_000, 8)).map(|_| ());
        client.close(h).unwrap();
        switch.clear();
        let got = read_back(&sys, &client, "replay");
        (plan, outcome, used_snapshot(&sys), got)
    };
    let (plan_a, out_a, used_a, got_a) = run(99);
    let (plan_b, out_b, used_b, got_b) = run(99);
    assert_eq!(plan_a.faults.len(), plan_b.faults.len());
    for (a, b) in plan_a.faults.iter().zip(&plan_b.faults) {
        assert_eq!(a.disk, b.disk);
    }
    assert_eq!(out_a.is_ok(), out_b.is_ok());
    assert_eq!(used_a, used_b, "replay diverged in on-disk state");
    assert_eq!(got_a, got_b, "replay diverged in readable content");

    let (plan_c, _, _, _) = run(100);
    let same = plan_a
        .faults
        .iter()
        .zip(&plan_c.faults)
        .all(|(a, c)| a.disk == c.disk);
    assert!(
        plan_a.faults.len() != plan_c.faults.len() || !same,
        "different seeds should move the fault"
    );
}
