//! Cross-crate coding properties: the erasure library's behaviour as seen
//! through the simulation stack and the analysis module.

use rand::seq::SliceRandom;
use robustore::erasure::analysis::{
    coded_reassembly_cdf, lt_reassembly_mc, mean_blocks_needed, replication_reassembly_cdf,
};
use robustore::erasure::lt::{blocks_needed, LtCode};
use robustore::erasure::{LtParams, ReedSolomon};
use robustore::simkit::{OnlineStats, SeedSequence};

#[test]
fn lt_and_rs_recover_identical_data() {
    // Same data through both codes: the decoded output must agree (and
    // equal the input), independent of which subset was received.
    let k = 24;
    let len = 512;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..len).map(|j| ((i * 7 + j * 3) % 256) as u8).collect())
        .collect();

    let rs = ReedSolomon::new(k, 2 * k).unwrap();
    let rs_coded = rs.encode(&data).unwrap();
    let rs_rx: Vec<_> = (k..2 * k).map(|i| (i, rs_coded[i].clone())).collect();
    assert_eq!(rs.decode(&rs_rx).unwrap(), data);

    let lt = LtCode::plan(k, 4 * k, LtParams::default(), 42).unwrap();
    let lt_coded = lt.encode(&data).unwrap();
    let mut order: Vec<usize> = (0..lt.n()).collect();
    let mut rng = SeedSequence::new(9).fork("order", 0);
    order.shuffle(&mut rng);
    let rx: Vec<_> = order.iter().map(|&j| (j, lt_coded[j].clone())).collect();
    assert_eq!(lt.decode(rx).unwrap(), data);
}

#[test]
fn reception_overhead_improves_with_k() {
    // §5.2.2: relative reception overhead falls as the word length grows.
    let seq = SeedSequence::new(17);
    let mut means = Vec::new();
    for (idx, k) in [64usize, 256, 1024].into_iter().enumerate() {
        let mut stats = OnlineStats::new();
        for t in 0..15u64 {
            let code = LtCode::plan(
                k,
                3 * k,
                LtParams::default(),
                seq.seed_for("plan", (idx as u64) << 32 | t),
            )
            .unwrap();
            let mut order: Vec<usize> = (0..code.n()).collect();
            let mut rng = seq.fork("order", (idx as u64) << 32 | t);
            order.shuffle(&mut rng);
            let (needed, _) = blocks_needed(&code, order).unwrap();
            stats.push(needed as f64 / k as f64 - 1.0);
        }
        means.push(stats.mean());
    }
    assert!(
        means[2] < means[0],
        "overhead should fall with K: {means:?}"
    );
    assert!(
        (0.2..0.8).contains(&means[2]),
        "K=1024 overhead ≈ 0.5 (paper): {means:?}"
    );
}

#[test]
fn analysis_cdfs_bracket_the_real_lt_code() {
    // Figure 4-1 consistency: the real LT curve needs more blocks than the
    // idealised degree-5 coverage bound suggests is impossible (≥ K), and
    // far fewer than replication.
    let k = 128;
    let stored = 4 * k;
    let rep = replication_reassembly_cdf(k, 4);
    let ideal = coded_reassembly_cdf(k, 5, stored);
    let real = lt_reassembly_mc(k, stored, LtParams::default(), 60, 23);

    let m_rep = mean_blocks_needed(&rep);
    let m_ideal = mean_blocks_needed(&ideal);
    let m_real = mean_blocks_needed(&real);
    assert!(m_real >= k as f64, "cannot decode below K");
    assert!(
        m_real < 0.75 * m_rep,
        "erasure coding beats replication: LT {m_real:.0} vs replication {m_rep:.0}"
    );
    // The idealised model and the real code should be in the same regime.
    // (At K = 128 the coverage model can undershoot K itself, so the band
    // is wide; the point is order-of-magnitude agreement.)
    assert!(
        m_real < 2.5 * m_ideal && m_ideal < 2.5 * m_real,
        "ideal {m_ideal:.0} vs real {m_real:.0}"
    );
}

#[test]
fn rateless_extension_by_replanning() {
    // A writer can ask for more coded blocks (larger N) without changing
    // K; any decodable prefix property is preserved by planning.
    let k = 32;
    let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; 64]).collect();
    for n in [k, 2 * k, 4 * k, 8 * k] {
        let code = LtCode::plan(k, n, LtParams::default(), 5).unwrap();
        let coded = code.encode(&data).unwrap();
        let rx: Vec<_> = coded.into_iter().enumerate().collect();
        assert_eq!(code.decode(rx).unwrap(), data, "n = {n}");
    }
}
