//! Chaos suite for the durable metadata plane.
//!
//! Every test drives a real [`System`] whose namespace lives in the
//! WAL-backed, quorum-replicated metastore, arms deterministic seeded
//! metadata faults ([`MetaFaultPlan`]) against the shard replicas, and
//! asserts the plane's durability contract:
//!
//! * **crash mid-commit** (a torn log append) recovers to a consistent
//!   pre- or post-commit namespace — never a torn record, never a
//!   half-applied file;
//! * **minority replica loss** costs zero committed files and keeps the
//!   namespace writable; revived replicas are read-repaired back into
//!   agreement;
//! * **bit rot in a log tail** is truncated at the first bad frame and
//!   quorum read-repair re-converges the replica — repeated recovery is
//!   idempotent (second pass drops zero bytes);
//! * the durable plane is **observationally identical** to the
//!   in-memory oracle plane over the same operation sequence;
//! * a **file-backed** plane survives a full process restart with the
//!   namespace and the file-id floor intact.

use std::collections::BTreeMap;

use robustore::core::{
    AccessMode, Client, FileMeta, InMemoryBackend, MemReplica, MetastoreConfig, QosOptions,
    StoreError, System, SystemConfig,
};
use robustore::simkit::{MetaFaultKind, MetaFaultPlan, MetaFaultScenario, SeedSequence};

const DISKS: usize = 8;

/// A system whose metadata plane is the durable metastore with the given
/// shard/replica shape (in-memory replicas: quorum-replicated and
/// chaos-injectable, no disk I/O).
fn durable_system(shards: usize, replicas: usize) -> System {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 20e6 + i as f64 * 5e6).collect();
    System::new(
        InMemoryBackend::new(speeds),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            metastore: Some(MetastoreConfig {
                shards,
                replicas,
                ..MetastoreConfig::default()
            }),
            ..Default::default()
        },
    )
}

/// The in-memory oracle plane: same system shape, no durability.
fn oracle_system() -> System {
    let speeds: Vec<f64> = (0..DISKS).map(|i| 20e6 + i as f64 * 5e6).collect();
    System::new(
        InMemoryBackend::new(speeds),
        SystemConfig {
            block_bytes: 4 << 10,
            encode_threads: 2,
            metastore: None,
            ..Default::default()
        },
    )
}

fn payload(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + salt as usize * 29) % 256) as u8)
        .collect()
}

fn put(client: &Client, name: &str, data: &[u8]) {
    let mut h = client
        .open(name, AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.write(&mut h, data).unwrap();
    client.close(h).unwrap();
}

fn get(client: &Client, name: &str) -> Vec<u8> {
    let h = client
        .open(name, AccessMode::Read, QosOptions::best_effort())
        .unwrap();
    let data = client.read(&h).unwrap();
    client.close(h).unwrap();
    data
}

/// Clone out every shard's replica handles so faults can be armed and
/// replicas revived without holding the metadata lock.
fn replica_handles(sys: &System) -> Vec<Vec<MemReplica>> {
    sys.with_metastore(|m| {
        (0..m.shard_count())
            .map(|s| {
                (0..m.replica_count())
                    .map(|r| m.mem_replica(s, r).expect("in-memory replica").clone())
                    .collect()
            })
            .collect()
    })
    .expect("durable plane")
}

/// Arm every fault in `plan` against the cloned replica handles.
fn apply_plan(handles: &[Vec<MemReplica>], plan: &MetaFaultPlan) {
    for f in &plan.faults {
        let replica = &handles[f.shard][f.replica];
        match f.kind {
            MetaFaultKind::ReplicaDown => replica.set_down(true),
            MetaFaultKind::TornAppend { keep } => replica.arm_torn_append(keep),
            MetaFaultKind::CorruptTail { bytes } => replica.corrupt_tail(bytes),
        }
    }
}

/// The full namespace as (name -> meta), straight off the plane.
fn namespace(sys: &System) -> BTreeMap<String, FileMeta> {
    sys.with_metastore(|m| {
        m.list()
            .into_iter()
            .map(|n| {
                let meta = m.stat(&n).expect("listed file must stat").clone();
                (n, meta)
            })
            .collect()
    })
    .expect("durable plane")
}

// ---------------------------------------------------------------------------
// Crash mid-commit: atomicity of the commit record
// ---------------------------------------------------------------------------

/// A torn append on a minority of replicas mid-commit must leave the
/// namespace in exactly the pre- or post-commit state after recovery —
/// never a torn or partial record — across many seeds.
#[test]
fn crash_mid_commit_recovers_pre_or_post_never_torn() {
    for seed in 0..8u64 {
        let seq = SeedSequence::new(seed);
        let sys = durable_system(4, 3);
        let client = Client::connect(&sys, sys.register_user());

        // A committed base namespace that must survive whatever happens.
        for i in 0..12 {
            put(&client, &format!("base-{i}"), &payload(6 << 10, i as u8));
        }
        let base = namespace(&sys);

        // Tear the next append (the commit record) on replicas of the
        // victim's shard. Seeds alternate between a survivable single
        // tear (commit succeeds on the remaining majority) and a
        // two-replica tear (commit loses quorum and fails) — recovery
        // must be consistent either way.
        let victim = format!("victim-{seed}");
        let shard = sys.with_metastore(|m| m.shard_of(&victim)).unwrap();
        let handles = replica_handles(&sys);
        let tears = 1 + (seed as usize % 2);
        // Draw the torn byte count from the seeded plan machinery so
        // every seed tears at a different offset inside the frame.
        let plan = MetaFaultPlan::generate(
            &MetaFaultScenario::CrashMidCommit {
                shards: 1,
                keep: 3 + seed as usize * 7,
            },
            1,
            3,
            &seq,
        );
        let keep = match plan.faults[0].kind {
            MetaFaultKind::TornAppend { keep } => keep,
            _ => unreachable!(),
        };
        for replica in handles[shard].iter().take(tears) {
            replica.arm_torn_append(keep);
        }

        let mut h = client
            .open(&victim, AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        let commit = client.write(&mut h, &payload(6 << 10, 0xEE));
        drop(h);
        if tears == 1 {
            commit.as_ref().expect("single torn replica keeps quorum");
        } else {
            match commit {
                Err(StoreError::MetaQuorumLost { .. }) => {}
                other => panic!("two torn replicas must lose quorum, got {other:?}"),
            }
        }

        // Crash: discard all volatile metadata state, replay the logs.
        let reports = sys.recover_metadata().unwrap().unwrap();
        let after = namespace(&sys);

        // Every base file survives, bit for bit.
        for (name, meta) in &base {
            assert_eq!(
                after.get(name),
                Some(meta),
                "seed {seed}: base file {name} damaged by mid-commit crash"
            );
        }
        // The victim is atomically absent or atomically complete.
        match after.get(&victim) {
            None => assert!(commit.is_err(), "seed {seed}: committed file vanished"),
            Some(meta) => {
                assert_eq!(meta.name, victim);
                assert!(meta.coding.k > 0 && meta.coding.n >= meta.coding.k);
                assert_eq!(meta.size_bytes, (6 << 10) as u64);
            }
        }
        assert_eq!(
            after.len(),
            base.len() + after.contains_key(&victim) as usize
        );
        // The torn tail was detected and dropped somewhere.
        let dropped: u64 = reports.iter().map(|r| r.torn_bytes_dropped).sum();
        assert!(
            dropped > 0,
            "seed {seed}: torn append left no trace to drop"
        );
    }
}

// ---------------------------------------------------------------------------
// Minority replica loss: zero namespace loss, then read-repair
// ---------------------------------------------------------------------------

/// Losing a strict minority of every shard's replicas loses zero files,
/// keeps the namespace writable, and revived replicas are repaired.
#[test]
fn minority_replica_loss_loses_zero_files() {
    let seq = SeedSequence::new(7);
    let sys = durable_system(4, 3);
    let client = Client::connect(&sys, sys.register_user());

    let mut contents = BTreeMap::new();
    for i in 0..24 {
        let name = format!("file-{i:03}");
        let data = payload(5 << 10, i as u8);
        put(&client, &name, &data);
        contents.insert(name, data);
    }
    let before = namespace(&sys);

    // Down a strict minority of every shard (the plan clamps below
    // quorum no matter how greedy the scenario).
    let handles = replica_handles(&sys);
    let plan = MetaFaultPlan::generate(
        &MetaFaultScenario::MinorityLoss {
            per_replica_losses: 99,
        },
        4,
        3,
        &seq,
    );
    apply_plan(&handles, &plan);
    for shard in 0..4 {
        assert_eq!(plan.downed(shard), 1, "3 replicas -> at most 1 may fall");
    }

    // The namespace stays fully readable and writable on the majority.
    for (name, data) in &contents {
        assert_eq!(&get(&client, name), data, "{name} lost with minority down");
    }
    put(&client, "written-degraded", &payload(4 << 10, 0xDD));

    // Crash-recover while the minority is still down: every committed
    // file must come back from the surviving majority.
    let reports = sys.recover_metadata().unwrap().unwrap();
    for r in &reports {
        assert_eq!(r.replicas_available, 2, "shard {} quorum shape", r.shard);
    }
    let after = namespace(&sys);
    for (name, meta) in &before {
        assert_eq!(after.get(name), Some(meta), "{name} lost in recovery");
    }
    assert!(after.contains_key("written-degraded"));

    // Revive the minority; recovery read-repairs it back into the fold.
    for row in &handles {
        for replica in row {
            replica.set_down(false);
        }
    }
    let healed = sys.recover_metadata().unwrap().unwrap();
    let repaired: usize = healed.iter().map(|r| r.replicas_repaired).sum();
    assert!(repaired > 0, "revived laggards must be read-repaired");
    assert_eq!(
        namespace(&sys),
        after,
        "healing must not change the namespace"
    );
    // A fully-healed plane recovers clean: nothing to repair, no torn
    // bytes, all replicas present.
    for r in sys.recover_metadata().unwrap().unwrap() {
        assert_eq!(r.replicas_available, 3);
        assert_eq!(r.torn_bytes_dropped, 0);
    }
}

// ---------------------------------------------------------------------------
// Corrupted log tail: truncation + convergence
// ---------------------------------------------------------------------------

/// Bit rot in one replica's log tail per shard is truncated at the first
/// bad frame; quorum carries the namespace and read-repair re-converges
/// the rotten replica, so a second recovery drops zero bytes.
#[test]
fn corrupt_log_tail_truncated_and_converges() {
    let seq = SeedSequence::new(11);
    let sys = durable_system(4, 3);
    let client = Client::connect(&sys, sys.register_user());

    for i in 0..24 {
        put(&client, &format!("file-{i:03}"), &payload(5 << 10, i as u8));
    }
    let before = namespace(&sys);

    let handles = replica_handles(&sys);
    let plan = MetaFaultPlan::generate(
        &MetaFaultScenario::TailRot {
            shards: 99,
            bytes: 13,
        },
        4,
        3,
        &seq,
    );
    assert_eq!(plan.faults.len(), 4, "one rotten replica on every shard");
    apply_plan(&handles, &plan);

    let reports = sys.recover_metadata().unwrap().unwrap();
    let dropped: u64 = reports.iter().map(|r| r.torn_bytes_dropped).sum();
    let repaired: usize = reports.iter().map(|r| r.replicas_repaired).sum();
    assert!(dropped > 0, "tail rot must be detected and truncated");
    assert!(repaired > 0, "rotten replicas must be read-repaired");
    assert_eq!(namespace(&sys), before, "quorum must carry the namespace");

    // Convergence: read-repair already rewrote the divergent replicas,
    // so recovering again finds a clean, agreeing replica set.
    for r in sys.recover_metadata().unwrap().unwrap() {
        assert_eq!(
            r.torn_bytes_dropped, 0,
            "shard {} did not converge",
            r.shard
        );
        assert_eq!(r.replicas_available, 3);
    }
    assert_eq!(namespace(&sys), before);
}

/// The combined storm — minority down, a torn append, and a rotten tail
/// on every shard at once — is survivable by construction: committed
/// files never disappear, and the plane heals once replicas return.
#[test]
fn fault_storm_is_survivable() {
    let seq = SeedSequence::new(3);
    let sys = durable_system(2, 5);
    let client = Client::connect(&sys, sys.register_user());

    for i in 0..16 {
        put(&client, &format!("file-{i:03}"), &payload(4 << 10, i as u8));
    }
    let before = namespace(&sys);

    let handles = replica_handles(&sys);
    let plan = MetaFaultPlan::generate(
        &MetaFaultScenario::Storm {
            per_replica_losses: 2,
            keep: 6,
            bytes: 9,
        },
        2,
        5,
        &seq,
    );
    apply_plan(&handles, &plan);

    // Writes during the storm may lose quorum (2 down + 1 torn leaves
    // exactly 2 of the needed 3 acks) — that is allowed; what is not
    // allowed is damaging committed state.
    for i in 0..4 {
        let name = format!("storm-{i}");
        let mut h = client
            .open(&name, AccessMode::Write, QosOptions::best_effort())
            .unwrap();
        let _ = client.write(&mut h, &payload(4 << 10, 0xA0 + i));
        drop(h);
    }

    let reports = sys.recover_metadata().unwrap().unwrap();
    for r in &reports {
        assert_eq!(r.replicas_available, 3, "5 replicas minus 2 down");
    }
    let after = namespace(&sys);
    for (name, meta) in &before {
        assert_eq!(after.get(name), Some(meta), "{name} lost in the storm");
    }

    // Heal and verify convergence.
    for row in &handles {
        for replica in row {
            replica.set_down(false);
        }
    }
    sys.recover_metadata().unwrap().unwrap();
    for r in sys.recover_metadata().unwrap().unwrap() {
        assert_eq!(r.replicas_available, 5);
        assert_eq!(r.torn_bytes_dropped, 0);
    }
    let healed = namespace(&sys);
    for name in before.keys() {
        assert!(healed.contains_key(name), "{name} lost after healing");
    }
}

// ---------------------------------------------------------------------------
// Differential: durable plane vs in-memory oracle
// ---------------------------------------------------------------------------

/// The durable plane must be observationally identical to the in-memory
/// oracle over a mixed create/overwrite/delete sequence — including
/// after a crash-recovery cycle on the durable side.
#[test]
fn durable_plane_matches_in_memory_oracle() {
    let durable = durable_system(4, 3);
    let oracle = oracle_system();
    let dc = Client::connect(&durable, durable.register_user());
    let oc = Client::connect(&oracle, oracle.register_user());

    // A deterministic mixed workload, applied to both planes.
    let mut live: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for step in 0..60u64 {
        let name = format!("file-{:02}", step % 17);
        match step % 5 {
            // Create or overwrite.
            0 | 1 | 3 => {
                let data = payload(3 << 10, (step % 251) as u8);
                put(&dc, &name, &data);
                put(&oc, &name, &data);
                live.insert(name, data);
            }
            // Delete if present.
            2 => {
                if live.remove(&name).is_some() {
                    dc.delete(&name).unwrap();
                    oc.delete(&name).unwrap();
                }
            }
            // Read back from both and compare.
            _ => {
                if let Some(data) = live.get(&name) {
                    assert_eq!(&get(&dc, &name), data);
                    assert_eq!(&get(&oc, &name), data);
                }
            }
        }
    }

    let mut durable_names = durable.list_files();
    let mut oracle_names = oracle.list_files();
    durable_names.sort();
    oracle_names.sort();
    assert_eq!(durable_names, oracle_names, "planes diverged on listing");
    assert_eq!(
        durable_names,
        live.keys().cloned().collect::<Vec<_>>(),
        "planes diverged from the model"
    );

    // A fault-free crash-recovery cycle must be invisible.
    let before = namespace(&durable);
    durable.recover_metadata().unwrap().unwrap();
    assert_eq!(namespace(&durable), before);
    for (name, data) in &live {
        assert_eq!(&get(&dc, name), data, "{name} unreadable after recovery");
    }
}

// ---------------------------------------------------------------------------
// File-backed restart
// ---------------------------------------------------------------------------

/// A file-backed plane survives a full process restart: the namespace
/// replays from the on-disk logs and the file-id floor guarantees no id
/// is ever reissued across the crash.
#[test]
fn file_backed_plane_survives_restart() {
    let dir = std::env::temp_dir().join(format!("rbst-metachaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = MetastoreConfig {
        shards: 2,
        replicas: 3,
        dir: Some(dir.clone()),
        ..MetastoreConfig::default()
    };

    let make = |cfg: MetastoreConfig| {
        let speeds: Vec<f64> = (0..DISKS).map(|i| 20e6 + i as f64 * 5e6).collect();
        System::new(
            InMemoryBackend::new(speeds),
            SystemConfig {
                block_bytes: 4 << 10,
                encode_threads: 2,
                metastore: Some(cfg),
                ..Default::default()
            },
        )
    };

    let (before, max_id) = {
        let sys = make(config.clone());
        let client = Client::connect(&sys, sys.register_user());
        for i in 0..10 {
            put(&client, &format!("disk-{i}"), &payload(4 << 10, i as u8));
        }
        client.delete("disk-3").unwrap();
        let ns = namespace(&sys);
        let max_id = ns.values().map(|m| m.file_id).max().unwrap();
        (ns, max_id)
        // Drop = the process dies; only <dir> survives.
    };

    let sys = make(config);
    assert_eq!(
        namespace(&sys),
        before,
        "restart must replay the namespace from the WALs"
    );
    // Ids never march backwards across a crash: a new file's id clears
    // everything allocated in the previous life.
    let client = Client::connect(&sys, sys.register_user());
    put(&client, "after-restart", &payload(4 << 10, 0x5A));
    let new_id = sys
        .with_metastore(|m| m.stat("after-restart").unwrap().file_id)
        .unwrap();
    assert!(
        new_id > max_id,
        "file id {new_id} reissued at or below pre-crash max {max_id}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Stale locks across recovery
// ---------------------------------------------------------------------------

/// Locks are volatile: a crash takes every lock holder with it, so
/// recovery rebuilds the table empty and a file a dead writer held is
/// immediately writable again.
#[test]
fn recovery_reclaims_dead_writers_locks() {
    let sys = durable_system(2, 3);
    let client = Client::connect(&sys, sys.register_user());
    put(&client, "held", &payload(4 << 10, 1));

    // A writer opens the file and then "crashes" (handle leaked, never
    // closed). The lock is live, so a second writer bounces.
    let h = client
        .open("held", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    match client.open("held", AccessMode::Write, QosOptions::best_effort()) {
        Err(StoreError::LockConflict(_)) => {}
        Err(other) => panic!("expected lock conflict, got {other:?}"),
        Ok(_) => panic!("expected lock conflict, got a handle"),
    }
    std::mem::forget(h);

    sys.recover_metadata().unwrap().unwrap();
    // The dead writer's lock did not survive the crash.
    let h2 = client
        .open("held", AccessMode::Write, QosOptions::best_effort())
        .unwrap();
    client.close(h2).unwrap();
}
