//! Property-based tests over the public coding and placement APIs.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use robustore::erasure::lt::{LtCode, LtDecoder};
use robustore::erasure::parity::ParityCode;
use robustore::erasure::replication::Replication;
use robustore::erasure::{LtParams, ReedSolomon};
use robustore::schemes::placement::Placement;
use robustore::simkit::SeedSequence;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LT codes: any planned graph decodes the original data from a
    /// random arrival order, for arbitrary data contents.
    #[test]
    fn lt_roundtrip_random_order(
        k in 4usize..48,
        extra in 1usize..4,
        len in 1usize..96,
        seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let n = k * (1 + extra);
        let data: Vec<Vec<u8>> = {
            let mut rng = SeedSequence::new(data_seed).fork("data", 0);
            (0..k).map(|_| (0..len).map(|_| rand::Rng::gen(&mut rng)).collect()).collect()
        };
        let code = LtCode::plan(k, n, LtParams::default(), seed).unwrap();
        let coded = code.encode(&data).unwrap();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SeedSequence::new(seed ^ 0x5A5A).fork("order", 0);
        order.shuffle(&mut rng);
        let rx: Vec<_> = order.iter().map(|&j| (j, coded[j].clone())).collect();
        prop_assert_eq!(code.decode(rx).unwrap(), data);
    }

    /// LT codes under block loss: drop a random subset of the coded
    /// blocks and feed the survivors in random order; the incremental
    /// decoder completes after roughly (1+ε)·K receptions — comfortably
    /// below the stored supply even with a quarter of it destroyed — and
    /// round-trips the data exactly.
    /// This is the property the degraded read path (lost sectors, failed
    /// disks) leans on.
    #[test]
    fn lt_decodes_after_dropping_random_blocks(
        k in 16usize..64,
        extra in 2usize..4,
        len in 1usize..96,
        seed in any::<u64>(),
        drop_seed in any::<u64>(),
    ) {
        let n = k * (1 + extra);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((i * 37 + j * 11 + seed as usize) % 256) as u8).collect())
            .collect();
        let code = LtCode::plan(k, n, LtParams::default(), seed).unwrap();
        let coded = code.encode(&data).unwrap();

        // Lose a quarter of the coded blocks outright, then receive the
        // survivors in random arrival order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SeedSequence::new(drop_seed).fork("drop", 0);
        order.shuffle(&mut rng);
        let survivors = &order[n / 4..];

        let mut dec = LtDecoder::new(&code, len);
        let mut needed = 0usize;
        for &j in survivors {
            needed += 1;
            if dec.receive(j, coded[j].clone()) {
                break;
            }
        }
        prop_assert!(
            needed <= 5 * k / 2,
            "decode took {} receptions for K={} (ε={:.2})",
            needed, k, needed as f64 / k as f64 - 1.0
        );
        prop_assert_eq!(dec.into_data().expect("decode complete"), data);
    }

    /// Reed-Solomon: any K-subset of coded blocks decodes.
    #[test]
    fn rs_any_subset_decodes(
        k in 1usize..12,
        extra in 1usize..12,
        len in 1usize..64,
        data in any::<u64>(),
        pick_seed in any::<u64>(),
    ) {
        let n = k + extra;
        prop_assume!(n <= 255);
        let blocks: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((data as usize + i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let rs = ReedSolomon::new(k, n).unwrap();
        let coded = rs.encode(&blocks).unwrap();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = SeedSequence::new(pick_seed).fork("pick", 0);
        idx.shuffle(&mut rng);
        let rx: Vec<_> = idx[..k].iter().map(|&i| (i, coded[i].clone())).collect();
        prop_assert_eq!(rs.decode(&rx).unwrap(), blocks);
    }

    /// Parity codes recover any single lost data block.
    #[test]
    fn parity_recovers_single_loss(
        k in 1usize..10,
        len in 1usize..64,
        lost in 0usize..10,
    ) {
        prop_assume!(lost < k);
        let blocks: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((i * 13 + j) % 256) as u8).collect())
            .collect();
        let pc = ParityCode::new(k).unwrap();
        let coded = pc.encode(&blocks).unwrap();
        let rx: Vec<_> = (0..=k).filter(|&i| i != lost).map(|i| (i, coded[i].clone())).collect();
        prop_assert_eq!(pc.decode(&rx).unwrap(), blocks);
    }

    /// Replication decodes iff every original is covered.
    #[test]
    fn replication_coverage_is_necessary_and_sufficient(
        k in 1usize..16,
        copies in 1usize..4,
        subset_seed in any::<u64>(),
    ) {
        let r = Replication::new(k, copies).unwrap();
        let blocks: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; 8]).collect();
        let coded = r.encode(&blocks).unwrap();
        let mut idx: Vec<usize> = (0..r.n()).collect();
        let mut rng = SeedSequence::new(subset_seed).fork("s", 0);
        idx.shuffle(&mut rng);
        let take = idx.len() / 2 + 1;
        let rx: Vec<_> = idx[..take].iter().map(|&i| (i, coded[i].clone())).collect();
        let covered: std::collections::HashSet<usize> =
            idx[..take].iter().map(|&i| r.original_of(i)).collect();
        match r.decode(&rx) {
            Ok(decoded) => {
                prop_assert_eq!(covered.len(), k);
                prop_assert_eq!(decoded, blocks);
            }
            Err(_) => prop_assert!(covered.len() < k),
        }
    }

    /// Placements conserve blocks: every constructor stores exactly what
    /// was asked, each coded semantic exactly once.
    #[test]
    fn placements_conserve_blocks(
        k in 1usize..64,
        disks in 1usize..16,
        extra in 0usize..3,
    ) {
        let n = k * (1 + extra);
        let p = Placement::coded_balanced(k, n, disks);
        prop_assert_eq!(p.total_blocks(), n);
        prop_assert!(p.copy_counts().values().all(|&c| c == 1));

        let p = Placement::raid0(k, disks);
        prop_assert_eq!(p.total_blocks(), k);

        let p = Placement::rraid(k, n.max(k), disks);
        prop_assert_eq!(p.total_blocks(), n.max(k));
        let counts = p.copy_counts();
        for i in 0..k as u32 {
            prop_assert!(counts[&i] >= 1, "original {} uncovered", i);
        }
    }

    /// Weighted placement apportions proportionally (largest remainder):
    /// every disk gets within one block of its exact quota.
    #[test]
    fn weighted_placement_is_proportional(
        n in 1usize..300,
        weights in proptest::collection::vec(0.0f64..100.0, 1..12),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let p = Placement::coded_weighted(4, n, &weights);
        prop_assert_eq!(p.total_blocks(), n);
        let total: f64 = weights.iter().sum();
        for (d, w) in weights.iter().enumerate() {
            let quota = w / total * n as f64;
            let got = p.per_disk[d].len() as f64;
            prop_assert!(
                (got - quota).abs() <= 1.0,
                "disk {} got {} for quota {:.2}", d, got, quota
            );
        }
    }
}
