//! Integration tests pinning the paper's headline claims at reduced scale.
//!
//! Full-scale sweeps live in the `xp` harness; these tests run the same
//! stack (disk model → cluster → schemes) on smaller configurations with
//! fixed seeds and generous margins, so regressions in any layer that
//! would change the *shape* of the results fail CI.

use robustore::cluster::{BackgroundPolicy, LayoutPolicy};
use robustore::schemes::{
    run_trials, AccessConfig, AccessKind, FaultScenario, SchemeKind, TrialStats,
};
use robustore::simkit::SimDuration;

/// 256 MB over 16 of 32 disks: big enough for the effects, small enough
/// for CI.
fn base(scheme: SchemeKind) -> AccessConfig {
    let mut cfg = AccessConfig::default().with_scheme(scheme).with_disks(16);
    cfg.data_bytes = 256 << 20;
    cfg.cluster.num_disks = 32;
    cfg
}

fn read_stats(scheme: SchemeKind, trials: u64, seed: u64) -> TrialStats {
    run_trials(&base(scheme), trials, seed)
}

#[test]
fn robustore_read_bandwidth_dominates() {
    // Figure 6-6's ordering at ≥16 disks: RobuSTore > RRAID-A > RRAID-S >
    // RAID-0, with a large RobuSTore/RAID-0 multiple.
    let raid0 = read_stats(SchemeKind::Raid0, 12, 1);
    let rraid_s = read_stats(SchemeKind::RraidS, 12, 1);
    let rraid_a = read_stats(SchemeKind::RraidA, 12, 1);
    let robusto = read_stats(SchemeKind::RobuStore, 12, 1);

    let (b0, bs, ba, br) = (
        raid0.mean_bandwidth_mbps(),
        rraid_s.mean_bandwidth_mbps(),
        rraid_a.mean_bandwidth_mbps(),
        robusto.mean_bandwidth_mbps(),
    );
    assert!(
        br > ba && ba > bs && bs > b0,
        "ordering: {b0:.0} {bs:.0} {ba:.0} {br:.0}"
    );
    assert!(
        br / b0 > 5.0,
        "RobuSTore should beat RAID-0 severalfold: {br:.0} vs {b0:.0}"
    );
}

#[test]
fn robustore_is_most_robust_and_rraid_s_least() {
    // Figure 6-7: latency stdev ordering for >8 disks.
    let raid0 = read_stats(SchemeKind::Raid0, 12, 3);
    let rraid_s = read_stats(SchemeKind::RraidS, 12, 3);
    let robusto = read_stats(SchemeKind::RobuStore, 12, 3);
    assert!(
        robusto.latency_stdev_secs() < raid0.latency_stdev_secs(),
        "RobuSTore stdev {} must beat RAID-0 {}",
        robusto.latency_stdev_secs(),
        raid0.latency_stdev_secs()
    );
    assert!(
        rraid_s.latency_stdev_secs() > robusto.latency_stdev_secs() * 2.0,
        "RRAID-S must be far less robust: {} vs {}",
        rraid_s.latency_stdev_secs(),
        robusto.latency_stdev_secs()
    );
    // Paper's robustness headline: stdev well under the mean latency.
    // (At full scale the ratio is <25%; the 16-disk reduction runs a bit
    // higher.)
    assert!(
        robusto.latency_stdev_secs() < 0.45 * robusto.mean_latency_secs(),
        "RobuSTore latency stdev {:.3} should be well under mean {:.3}",
        robusto.latency_stdev_secs(),
        robusto.mean_latency_secs()
    );
}

#[test]
fn robustore_absorbs_a_slow_disk_raid0_does_not() {
    // §6.3 operationalised: inject the same deterministic mid-access
    // slowdown schedule (one disk drops to 1/8 speed) into every scheme.
    // RAID-0 must wait for the straggler, so its latency spread explodes;
    // RobuSTore completes from other coded blocks and keeps both its
    // spread and its mean almost intact.
    let faulted = |scheme| {
        let cfg = base(scheme).with_faults(FaultScenario::one_slow_disk(8.0));
        run_trials(&cfg, 10, 14)
    };
    let raid0 = faulted(SchemeKind::Raid0);
    let robusto = faulted(SchemeKind::RobuStore);
    assert!(
        robusto.latency_stdev_secs() < raid0.latency_stdev_secs() / 5.0,
        "RobuSTore stdev {:.3} must stay far below RAID-0's {:.3} under a slow disk",
        robusto.latency_stdev_secs(),
        raid0.latency_stdev_secs()
    );
    assert!(
        robusto.mean_latency_secs() < raid0.mean_latency_secs(),
        "and its mean latency must win outright"
    );
    // The slowdown must actually bite: RAID-0's spread visibly exceeds
    // its no-fault baseline at the same seed.
    let raid0_clean = read_stats(SchemeKind::Raid0, 10, 14);
    assert!(
        raid0.latency_stdev_secs() > 2.0 * raid0_clean.latency_stdev_secs(),
        "slow disk must widen RAID-0's spread: {:.3} vs clean {:.3}",
        raid0.latency_stdev_secs(),
        raid0_clean.latency_stdev_secs()
    );
    // RobuSTore pays for the ride in cancelled speculative requests, not
    // in lost data: nothing fails outright.
    assert_eq!(robusto.failures, 0);
    assert!(robusto.cancelled_requests > 0);
}

#[test]
fn erasure_coding_survives_midaccess_failures() {
    // Two disks die mid-access under identical schedules: RAID-0 loses
    // data on every trial, RobuSTore completes every trial from the
    // remaining coded blocks and logs the lost requests as failed.
    let faulted = |scheme| {
        let cfg = base(scheme).with_faults(FaultScenario::n_failures(2));
        run_trials(&cfg, 6, 15)
    };
    let raid0 = faulted(SchemeKind::Raid0);
    let robusto = faulted(SchemeKind::RobuStore);
    assert_eq!(raid0.failures, 6, "RAID-0 cannot lose a disk");
    assert_eq!(robusto.failures, 0, "coded redundancy rides through");
    assert!(
        robusto.failed_requests > 0,
        "the deaths must be visible in the log"
    );
    assert!(robusto.mean_bandwidth_mbps() > 0.0);
}

#[test]
fn io_overhead_ordering_matches_fig6_8() {
    let raid0 = read_stats(SchemeKind::Raid0, 10, 3);
    let rraid_s = read_stats(SchemeKind::RraidS, 10, 3);
    let rraid_a = read_stats(SchemeKind::RraidA, 10, 3);
    let robusto = read_stats(SchemeKind::RobuStore, 10, 3);
    assert!(raid0.mean_io_overhead().abs() < 0.02, "RAID-0 ≈ 0");
    assert!(rraid_a.mean_io_overhead() < 0.15, "RRAID-A ≈ 0+");
    assert!(
        (0.25..1.0).contains(&robusto.mean_io_overhead()),
        "RobuSTore ~40-50%: {}",
        robusto.mean_io_overhead()
    );
    assert!(
        rraid_s.mean_io_overhead() > 1.0,
        "RRAID-S overhead grows toward 200%: {}",
        rraid_s.mean_io_overhead()
    );
}

#[test]
fn write_bandwidth_shape_matches_fig6_18() {
    // Speculative writing beats uniform striping by a wide margin; the
    // replicated schemes sink below RAID-0 because they write (1+D)x data
    // gated by the slowest disk.
    let mk = |scheme| {
        let cfg = base(scheme).with_kind(AccessKind::Write);
        run_trials(&cfg, 8, 4)
    };
    let raid0 = mk(SchemeKind::Raid0);
    let rraid_s = mk(SchemeKind::RraidS);
    let robusto = mk(SchemeKind::RobuStore);
    assert!(
        robusto.mean_bandwidth_mbps() > 3.0 * raid0.mean_bandwidth_mbps(),
        "RobuSTore write {:.0} vs RAID-0 {:.0}",
        robusto.mean_bandwidth_mbps(),
        raid0.mean_bandwidth_mbps()
    );
    assert!(rraid_s.mean_bandwidth_mbps() < raid0.mean_bandwidth_mbps());
    // Write I/O overhead ≈ redundancy (3x), RobuSTore slightly more.
    assert!((2.9..3.8).contains(&robusto.mean_io_overhead()));
    assert!((2.9..3.1).contains(&rraid_s.mean_io_overhead()));
}

#[test]
fn redundancy_threshold_matches_fig6_15() {
    // RobuSTore read bandwidth climbs steeply to ~200% redundancy, then
    // flattens: the 3x point must be close to the 9x point and far above
    // the 0.4x point.
    let at = |d: f64, seed: u64| {
        let cfg = base(SchemeKind::RobuStore).with_redundancy(d);
        run_trials(&cfg, 8, seed).mean_bandwidth_mbps()
    };
    let low = at(0.4, 5);
    let mid = at(3.0, 6);
    let high = at(9.0, 7);
    assert!(mid > 2.0 * low, "knee: D=0.4 {low:.0} vs D=3 {mid:.0}");
    assert!(
        (mid - high).abs() / high < 0.35,
        "plateau: D=3 {mid:.0} vs D=9 {high:.0}"
    );
}

#[test]
fn only_rraid_a_is_latency_sensitive() {
    // Figures 6-12..6-14 with 128 MB segments, RTT 1 ms vs 100 ms.
    let at = |scheme, rtt_ms: u64, seed| {
        let mut cfg = base(scheme);
        cfg.data_bytes = 128 << 20;
        cfg.cluster.rtt = SimDuration::from_millis(rtt_ms);
        run_trials(&cfg, 8, seed).mean_bandwidth_mbps()
    };
    let robusto_drop = 1.0 - at(SchemeKind::RobuStore, 100, 8) / at(SchemeKind::RobuStore, 1, 8);
    let rraid_a_drop = 1.0 - at(SchemeKind::RraidA, 100, 9) / at(SchemeKind::RraidA, 1, 9);
    assert!(
        robusto_drop < 0.2,
        "speculative access ~flat over RTT, dropped {robusto_drop:.2}"
    );
    assert!(
        rraid_a_drop > 0.15 && rraid_a_drop > robusto_drop,
        "adaptive access pays multi-RTT: RRAID-A drop {rraid_a_drop:.2} vs RobuSTore {robusto_drop:.2}"
    );
}

#[test]
fn homogeneous_environment_negates_robustore() {
    // Figure 6-24's negative result: with homogeneous disks, RobuSTore
    // loses its edge — at the paper's 64-disk scale it lands somewhat
    // *below* RAID-0 (reception overhead with nothing to hide), though by
    // far less than the 50% reception overhead itself. The effect needs
    // enough aggregate bandwidth to saturate the client, so this test
    // runs the full-scale configuration.
    let mk = |scheme| {
        let mut cfg = AccessConfig::default().with_scheme(scheme);
        cfg.layout = LayoutPolicy::Homogeneous;
        run_trials(&cfg, 6, 10)
    };
    let raid0 = mk(SchemeKind::Raid0).mean_bandwidth_mbps();
    let robusto = mk(SchemeKind::RobuStore).mean_bandwidth_mbps();
    assert!(
        robusto < raid0,
        "RobuSTore should trail in homogeneous systems: {robusto:.0} vs {raid0:.0}"
    );
    assert!(
        robusto > 0.55 * raid0,
        "...but by much less than the reception overhead: {robusto:.0} vs {raid0:.0}"
    );
}

#[test]
fn competitive_load_degrades_and_robustore_stays_best() {
    // §6.3.2: under shared disks, every scheme loses bandwidth relative
    // to idle disks, and RobuSTore keeps the best bandwidth/robustness.
    let with_bg = |scheme, seed| {
        let mut cfg = base(scheme);
        cfg.background = BackgroundPolicy::Uniform(SimDuration::from_millis(12));
        run_trials(&cfg, 8, seed)
    };
    let idle = read_stats(SchemeKind::RobuStore, 8, 11);
    let shared = with_bg(SchemeKind::RobuStore, 11);
    assert!(
        shared.mean_bandwidth_mbps() < idle.mean_bandwidth_mbps(),
        "sharing must cost bandwidth: idle {:.0} vs shared {:.0}",
        idle.mean_bandwidth_mbps(),
        shared.mean_bandwidth_mbps()
    );
    let raid0_shared = with_bg(SchemeKind::Raid0, 12);
    assert!(
        shared.mean_bandwidth_mbps() > raid0_shared.mean_bandwidth_mbps(),
        "RobuSTore still wins under sharing"
    );
}

#[test]
fn unbalanced_striping_costs_a_little_not_a_lot() {
    // Figures 6-21..6-23: read-after-write (unbalanced) is slightly below
    // the balanced read but far above the baselines.
    let balanced = read_stats(SchemeKind::RobuStore, 8, 13);
    let cfg = base(SchemeKind::RobuStore).with_kind(AccessKind::ReadAfterWrite);
    let unbalanced = run_trials(&cfg, 8, 13);
    let ratio = unbalanced.mean_bandwidth_mbps() / balanced.mean_bandwidth_mbps();
    assert!(
        (0.4..1.15).contains(&ratio),
        "unbalanced/balanced ratio {ratio:.2}"
    );
    let raid0 = read_stats(SchemeKind::Raid0, 8, 13);
    assert!(unbalanced.mean_bandwidth_mbps() > 3.0 * raid0.mean_bandwidth_mbps());
}
