//! `robustore` — a small CLI over the RobuSTore client API with durable
//! file-backed storage.
//!
//! ```text
//! robustore --store DIR init --disks N [--spread X]
//! robustore --store DIR put  <file> [--name NAME] [--redundancy D]
//! robustore --store DIR get  <name> [--out PATH]
//! robustore --store DIR rm   <name>
//! robustore --store DIR ls
//! robustore --store DIR stat <name>
//! ```
//!
//! Blocks are LT-coded and spread over `N` virtual disks under `DIR`
//! (directories on one filesystem — the point is exercising the real
//! coding/metadata/planning stack end to end, not multi-machine
//! deployment). File metadata persists as plain-text sidecars under
//! `DIR/metadata/`. The store is single-owner: ownership is anchored in
//! filesystem permissions on `DIR`, so restored metadata is re-owned by
//! the invoking session.

use std::path::{Path, PathBuf};
use std::process::exit;

use robustore::core::metadata::CodingSpec;
use robustore::core::{
    AccessMode, Client, FileBackend, FileMeta, QosOptions, ScrubReport, Scrubber, System,
    SystemConfig,
};
use robustore::erasure::LtParams;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: robustore --store DIR <command>\n\
         commands:\n\
         \x20 init --disks N [--spread X]   create a store (disk speeds span X-fold, default 4)\n\
         \x20 put <file> [--name NAME] [--redundancy D]\n\
         \x20 get <name> [--out PATH]\n\
         \x20 rm <name>\n\
         \x20 ls\n\
         \x20 stat <name>\n\
         \x20 scrub [<name>]                verify every block, restore redundancy, add checksums"
    );
    exit(2);
}

/// Plain-text metadata sidecar (no serde_json offline; the format is a
/// versioned key=value list with one `disk` line per layout entry).
mod sidecar {
    use super::*;

    pub fn encode(m: &FileMeta) -> String {
        let mut out = String::new();
        // v3: per-block CRC32C checksums (`crc` lines). v2 sidecars (no
        // checksums) still decode — their blocks read as unverified until
        // a scrub upgrades them. v1 sidecars index blocks under the old
        // key scheme, so decode refuses them instead of misaddressing
        // every block.
        out.push_str("robustore-meta-v3\n");
        out.push_str(&format!("name={}\n", m.name));
        out.push_str(&format!("file_id={}\n", m.file_id));
        out.push_str(&format!("size_bytes={}\n", m.size_bytes));
        out.push_str(&format!("k={}\n", m.coding.k));
        out.push_str(&format!("n={}\n", m.coding.n));
        out.push_str(&format!("block_bytes={}\n", m.coding.block_bytes));
        out.push_str(&format!("lt_c={}\n", m.coding.params.c));
        out.push_str(&format!("lt_delta={}\n", m.coding.params.delta));
        out.push_str(&format!("seed={}\n", m.coding.seed));
        out.push_str(&format!("version={}\n", m.version));
        let odd: Vec<String> = m.odd_keys.iter().map(|i| i.to_string()).collect();
        out.push_str(&format!("odd={}\n", odd.join(",")));
        for (disk, ids) in &m.layout {
            let list: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
            out.push_str(&format!("disk={}:{}\n", disk, list.join(",")));
        }
        for (id, crc) in &m.checksums {
            out.push_str(&format!("crc={id}:{crc:08x}\n"));
        }
        out
    }

    /// Decode a sidecar, or say precisely why it cannot be trusted —
    /// torn/truncated files and unknown versions must surface a clean
    /// error, never a panic or a silently empty meta.
    pub fn decode(text: &str, owner: u64) -> Result<FileMeta, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty sidecar")?;
        let has_checksums = match header {
            "robustore-meta-v3" => true,
            "robustore-meta-v2" => false, // forward-compat: no crc lines
            "robustore-meta-v1" => {
                return Err(
                    "v1 sidecar indexes blocks under the pre-generation key scheme; \
                     refusing to misaddress every block"
                        .into(),
                )
            }
            other => {
                return Err(format!(
                    "unrecognised sidecar header {other:?} (torn file or future version)"
                ))
            }
        };
        let mut name = None;
        let mut file_id = None;
        let mut size_bytes = None;
        let mut k = None;
        let mut n = None;
        let mut block_bytes = None;
        let mut c = None;
        let mut delta = None;
        let mut seed = None;
        let mut version = None;
        let mut odd_keys = std::collections::BTreeSet::new();
        let mut layout: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut checksums = std::collections::BTreeMap::new();
        let bad = |key: &str, value: &str| format!("bad {key} value {value:?} (torn line?)");
        for line in lines {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("malformed line {line:?} (torn file?)"))?;
            match key {
                "name" => name = Some(value.to_string()),
                "file_id" => file_id = Some(value.parse().map_err(|_| bad(key, value))?),
                "size_bytes" => size_bytes = Some(value.parse().map_err(|_| bad(key, value))?),
                "k" => k = Some(value.parse().map_err(|_| bad(key, value))?),
                "n" => n = Some(value.parse().map_err(|_| bad(key, value))?),
                "block_bytes" => block_bytes = Some(value.parse().map_err(|_| bad(key, value))?),
                "lt_c" => c = Some(value.parse().map_err(|_| bad(key, value))?),
                "lt_delta" => delta = Some(value.parse().map_err(|_| bad(key, value))?),
                "seed" => seed = Some(value.parse().map_err(|_| bad(key, value))?),
                "version" => version = Some(value.parse().map_err(|_| bad(key, value))?),
                "odd" => {
                    for t in value.split(',').filter(|t| !t.is_empty()) {
                        odd_keys.insert(t.parse().map_err(|_| bad(key, value))?);
                    }
                }
                "disk" => {
                    let (disk, ids) = value.split_once(':').ok_or_else(|| bad(key, value))?;
                    let ids: Vec<u32> = if ids.is_empty() {
                        Vec::new()
                    } else {
                        ids.split(',')
                            .map(|t| t.parse().ok())
                            .collect::<Option<_>>()
                            .ok_or_else(|| bad(key, value))?
                    };
                    layout.push((disk.parse().map_err(|_| bad(key, value))?, ids));
                }
                "crc" if has_checksums => {
                    let (id, crc) = value.split_once(':').ok_or_else(|| bad(key, value))?;
                    checksums.insert(
                        id.parse().map_err(|_| bad(key, value))?,
                        u32::from_str_radix(crc, 16).map_err(|_| bad(key, value))?,
                    );
                }
                _ => return Err(format!("unknown sidecar key {key:?}")),
            }
        }
        let missing = |field: &str| format!("truncated sidecar: missing {field}");
        Ok(FileMeta {
            name: name.ok_or_else(|| missing("name"))?,
            file_id: file_id.ok_or_else(|| missing("file_id"))?,
            size_bytes: size_bytes.ok_or_else(|| missing("size_bytes"))?,
            coding: CodingSpec {
                k: k.ok_or_else(|| missing("k"))?,
                n: n.ok_or_else(|| missing("n"))?,
                block_bytes: block_bytes.ok_or_else(|| missing("block_bytes"))?,
                params: LtParams {
                    c: c.ok_or_else(|| missing("lt_c"))?,
                    delta: delta.ok_or_else(|| missing("lt_delta"))?,
                    ..Default::default()
                },
                seed: seed.ok_or_else(|| missing("seed"))?,
            },
            layout,
            odd_keys,
            checksums,
            owner,
            version: version.ok_or_else(|| missing("version"))?,
        })
    }
}

fn meta_dir(store: &Path) -> PathBuf {
    store.join("metadata")
}

fn meta_path(store: &Path, name: &str) -> PathBuf {
    // File names may contain '/', which must not escape the sidecar dir.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    meta_dir(store).join(format!("{h:016x}.meta"))
}

/// Open the store and restore all persisted metadata, owned by a fresh
/// session identity.
fn open_store(store: &Path) -> (System, Client) {
    if !store.join("speeds").exists() {
        die(&format!(
            "no store at {} (run `robustore --store {} init --disks N` first)",
            store.display(),
            store.display()
        ));
    }
    let text = std::fs::read_to_string(store.join("speeds")).unwrap_or_default();
    let speeds: Vec<f64> = text
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    let backend = FileBackend::open(store, speeds).unwrap_or_else(|e| die(&e.to_string()));
    let system = System::with_backend(
        Box::new(backend),
        SystemConfig {
            block_bytes: 256 << 10,
            ..Default::default()
        },
    );
    let me = system.register_user();
    if let Ok(entries) = std::fs::read_dir(meta_dir(store)) {
        for entry in entries.filter_map(|e| e.ok()) {
            if let Ok(text) = std::fs::read_to_string(entry.path()) {
                // A sidecar that cannot be trusted is skipped loudly:
                // the file's blocks stay on disk, the namespace entry is
                // simply absent until the sidecar is repaired.
                match sidecar::decode(&text, me) {
                    Ok(meta) => {
                        if let Err(e) = system.import_meta(meta) {
                            eprintln!(
                                "warning: could not restore metadata from {}: {e}",
                                entry.path().display()
                            );
                        }
                    }
                    Err(why) => eprintln!(
                        "warning: skipping sidecar {}: {why}",
                        entry.path().display()
                    ),
                }
            }
        }
    }
    let client = Client::connect(&system, me);
    (system, client)
}

fn persist_meta(store: &Path, system: &System, name: &str) {
    let meta = system
        .export_meta(name)
        .unwrap_or_else(|| die("metadata vanished after write"));
    std::fs::create_dir_all(meta_dir(store)).ok();
    std::fs::write(meta_path(store, name), sidecar::encode(&meta))
        .unwrap_or_else(|e| die(&format!("cannot persist metadata: {e}")));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store: Option<PathBuf> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--store" {
            i += 1;
            store = args.get(i).map(PathBuf::from);
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let store = store.unwrap_or_else(|| usage());
    if rest.is_empty() {
        usage();
    }
    let flag = |name: &str| -> Option<String> {
        rest.iter()
            .position(|a| a == name)
            .and_then(|p| rest.get(p + 1).cloned())
    };

    match rest[0].as_str() {
        "init" => {
            let disks: usize = flag("--disks")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
            let spread: f64 = flag("--spread").and_then(|v| v.parse().ok()).unwrap_or(4.0);
            if disks == 0 || spread < 1.0 {
                die("need --disks ≥ 1 and --spread ≥ 1");
            }
            // Nominal speeds spanning `spread`-fold, for planner realism.
            let speeds: Vec<f64> = (0..disks)
                .map(|d| 10e6 * spread.powf(d as f64 / (disks.max(2) - 1) as f64))
                .collect();
            FileBackend::open(&store, speeds).unwrap_or_else(|e| die(&e.to_string()));
            std::fs::create_dir_all(meta_dir(&store)).ok();
            println!(
                "initialised store at {} with {disks} disks",
                store.display()
            );
        }
        "put" => {
            let src = rest.get(1).unwrap_or_else(|| usage());
            let name = flag("--name").unwrap_or_else(|| src.clone());
            let redundancy: f64 = flag("--redundancy")
                .and_then(|v| v.parse().ok())
                .unwrap_or(3.0);
            let data = std::fs::read(src).unwrap_or_else(|e| die(&format!("read {src}: {e}")));
            let (system, client) = open_store(&store);
            let mut h = client
                .open(
                    &name,
                    AccessMode::Write,
                    QosOptions::best_effort().with_redundancy(redundancy),
                )
                .unwrap_or_else(|e| die(&e.to_string()));
            let report = client
                .write(&mut h, &data)
                .unwrap_or_else(|e| die(&e.to_string()));
            client.close(h).unwrap_or_else(|e| die(&e.to_string()));
            persist_meta(&store, &system, &name);
            println!(
                "stored {name}: {} bytes as {} coded blocks on {} disks ({:.0}% redundancy)",
                data.len(),
                report.blocks_written,
                report.disks,
                report.redundancy * 100.0
            );
        }
        "get" => {
            let name = rest.get(1).unwrap_or_else(|| usage());
            let out = flag("--out").unwrap_or_else(|| name.clone());
            let (_system, client) = open_store(&store);
            let h = client
                .open(name, AccessMode::Read, QosOptions::best_effort())
                .unwrap_or_else(|e| die(&e.to_string()));
            let (data, rr) = client
                .read_with_report(&h)
                .unwrap_or_else(|e| die(&e.to_string()));
            client.close(h).unwrap_or_else(|e| die(&e.to_string()));
            std::fs::write(&out, &data).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            if rr.blocks_repaired > 0 {
                // Read-repair may have committed a new layout; keep the
                // sidecar in step with it.
                persist_meta(&store, &_system, name);
            }
            println!(
                "retrieved {name} -> {out} ({} bytes from {} blocks, {} left unread)",
                data.len(),
                rr.blocks_fetched,
                rr.blocks_cancelled
            );
            if rr.blocks_repaired > 0 {
                println!("read-repair restored {} damaged blocks", rr.blocks_repaired);
            }
        }
        "rm" => {
            let name = rest.get(1).unwrap_or_else(|| usage());
            let (_system, client) = open_store(&store);
            client.delete(name).unwrap_or_else(|e| die(&e.to_string()));
            std::fs::remove_file(meta_path(&store, name)).ok();
            println!("removed {name}");
        }
        "ls" => {
            let (system, _client) = open_store(&store);
            for name in system.list_files() {
                println!("{name}");
            }
        }
        "scrub" => {
            let (system, client) = open_store(&store);
            let print_report = |r: &ScrubReport| {
                println!(
                    "{}: {}/{} blocks stored ({} verified, {} unverified, \
                     {} corrupt, {} missing) -> restored {}, +{} checksums",
                    r.file,
                    r.blocks_stored_after,
                    r.blocks_target,
                    r.blocks_verified,
                    r.blocks_unverified,
                    r.blocks_corrupt,
                    r.blocks_missing,
                    r.blocks_restored,
                    r.checksums_added
                );
            };
            match rest.get(1).filter(|a| !a.starts_with("--")) {
                Some(name) => {
                    let r = client.scrub(name).unwrap_or_else(|e| die(&e.to_string()));
                    persist_meta(&store, &system, name);
                    print_report(&r);
                }
                None => {
                    let sweep = Scrubber::new(&client).sweep();
                    for r in &sweep.scrubbed {
                        persist_meta(&store, &system, &r.file);
                        print_report(r);
                    }
                    for (name, e) in &sweep.failed {
                        eprintln!("{name}: scrub failed: {e}");
                    }
                    if !sweep.failed.is_empty() {
                        exit(1);
                    }
                }
            }
        }
        "stat" => {
            let name = rest.get(1).unwrap_or_else(|| usage());
            let (system, _client) = open_store(&store);
            match system.export_meta(name) {
                Some(m) => {
                    println!("name:        {}", m.name);
                    println!("size:        {} bytes", m.size_bytes);
                    println!(
                        "coding:      LT K={} N={} ({} KiB blocks, seed {:#x})",
                        m.coding.k,
                        m.coding.n,
                        m.coding.block_bytes >> 10,
                        m.coding.seed
                    );
                    println!("version:     {}", m.version);
                    println!(
                        "disks used:  {}",
                        m.layout.iter().filter(|(_, b)| !b.is_empty()).count()
                    );
                    println!("blocks:      {}", m.stored_blocks());
                }
                None => die(&format!("no such file: {name}")),
            }
        }
        _ => usage(),
    }
}
