#![warn(missing_docs)]

//! RobuSTore — a distributed storage architecture with robust and high
//! performance.
//!
//! Facade crate re-exporting the workspace's public API. See the README for
//! a quickstart and `DESIGN.md` for the architecture.

pub use robustore_cluster as cluster;
pub use robustore_core as core;
pub use robustore_diskmodel as diskmodel;
pub use robustore_erasure as erasure;
pub use robustore_schemes as schemes;
pub use robustore_simkit as simkit;
